"""The persistent fuzzing corpus: interesting programs that compound across campaigns.

A corpus entry is a test program (optionally with a witness input pair) plus
an *energy* score that biases the mutational generation strategies toward
entries that recently produced new coverage or violations.  Entries are
content-addressed: the ID is a BLAKE2b digest of the program's canonical
serialised form (minus its name, which encodes the generating seed), so the
same program discovered by different instances, backends or campaigns always
receives the same ID — which is what makes cross-backend corpus merging and
save/reload round-trips deterministic.

The on-disk format is plain JSON (``format: amulet-corpus-v1``), entries
sorted by ID so a saved corpus is byte-stable for a given content set.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.generator.inputs import Input
from repro.isa.program import Program

CORPUS_FORMAT = "amulet-corpus-v1"

#: Energy assigned per origin when no explicit score is given.  Violation
#: witnesses dominate: re-mutating a known leaky gadget is the highest-value
#: work a mutational round can do.
DEFAULT_ENERGY = {
    "seed": 1.0,
    "litmus": 4.0,
    "interesting": 2.0,
    "violation": 8.0,
    "minimized": 8.0,
}

#: Merge priority when the same program arrives with different origins.
_ORIGIN_PRIORITY = ("minimized", "violation", "litmus", "interesting", "seed")


def _origin_rank(origin: str) -> int:
    """Merge rank of an origin; unknown origins (hand-edited or future
    format revisions) rank lowest instead of crashing the merge."""
    try:
        return _ORIGIN_PRIORITY.index(origin)
    except ValueError:
        return len(_ORIGIN_PRIORITY)


def input_to_dict(test_input: Input) -> Dict[str, object]:
    return {
        "registers": {name: value for name, value in test_input.registers},
        "memory_hex": test_input.memory.hex(),
        "seed": test_input.seed,
    }


def input_from_dict(payload: Dict[str, object]) -> Input:
    return Input.create(
        {name: int(value) for name, value in payload["registers"].items()},
        bytes.fromhex(payload["memory_hex"]),
        seed=payload.get("seed", 0),
    )


def program_dict_id(payload: Dict[str, object]) -> str:
    """Content-addressed ID of a serialised program (name excluded)."""
    canonical_payload = {key: value for key, value in payload.items() if key != "name"}
    canonical = json.dumps(canonical_payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=8).hexdigest()


def program_id(program: Program) -> str:
    """Content-addressed entry ID (stable across processes and campaigns).

    Identical to ``program_dict_id(program.to_dict())`` but served from the
    digest cached on the instance, which also keys the specialization cache
    (:meth:`Program.content_id`) — corpus replays therefore share compiled
    artifacts with the round that produced them.
    """
    return program.content_id()


@dataclass
class CorpusEntry:
    """One corpus member: a program, its provenance and its mutation energy."""

    entry_id: str
    program_dict: Dict[str, object]
    origin: str = "interesting"
    energy: float = 1.0
    #: ID of the corpus entry this one was mutated from (lineage tracking).
    parent_id: Optional[str] = None
    #: Witness input pair for violation-origin entries (serialised).
    inputs: Tuple[Dict[str, object], ...] = ()
    #: Rebuilt Program, memoised so repeat scheduling of the same entry
    #: reuses one instance (and with it the decode + specialization caches,
    #: which key weakly on the instance).
    _program: Optional[Program] = field(default=None, repr=False, compare=False)

    def program(self) -> Program:
        if self._program is None:
            self._program = Program.from_dict(self.program_dict)
        return self._program

    def input_pair(self) -> Optional[Tuple[Input, Input]]:
        if len(self.inputs) < 2:
            return None
        return input_from_dict(self.inputs[0]), input_from_dict(self.inputs[1])

    def to_json_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "id": self.entry_id,
            "origin": self.origin,
            "energy": round(self.energy, 4),
            "program": self.program_dict,
        }
        if self.parent_id is not None:
            payload["parent"] = self.parent_id
        if self.inputs:
            payload["inputs"] = list(self.inputs)
        return payload

    @staticmethod
    def from_json_dict(payload: Dict[str, object]) -> "CorpusEntry":
        return CorpusEntry(
            entry_id=payload["id"],
            program_dict=payload["program"],
            origin=payload.get("origin", "interesting"),
            energy=float(payload.get("energy", 1.0)),
            parent_id=payload.get("parent"),
            inputs=tuple(payload.get("inputs", ())),
        )


class Corpus:
    """An ordered, content-deduplicated set of corpus entries."""

    def __init__(self, entries: Optional[Sequence[CorpusEntry]] = None) -> None:
        self._entries: Dict[str, CorpusEntry] = {}
        for entry in entries or ():
            self.merge_entry(entry)

    # -- basic container protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry_id: str) -> bool:
        return entry_id in self._entries

    def get(self, entry_id: str) -> Optional[CorpusEntry]:
        return self._entries.get(entry_id)

    def entries(self) -> List[CorpusEntry]:
        """Entries in insertion order (deterministic for a given history)."""
        return list(self._entries.values())

    def entry_ids(self) -> Tuple[str, ...]:
        return tuple(self._entries)

    # -- adding ---------------------------------------------------------------
    def add_program(
        self,
        program: Program,
        origin: str = "interesting",
        energy: Optional[float] = None,
        parent_id: Optional[str] = None,
        input_pair: Optional[Tuple[Input, Input]] = None,
    ) -> CorpusEntry:
        """Add ``program`` (or update the existing entry with the same content).

        Returns the canonical entry.  Re-adding existing content merges
        deterministically: energy takes the maximum, origin the highest
        priority, and a witness input pair is kept once one is known.
        """
        entry = CorpusEntry(
            entry_id=program_id(program),
            program_dict=program.to_dict(),
            origin=origin,
            energy=energy if energy is not None else DEFAULT_ENERGY.get(origin, 1.0),
            parent_id=parent_id,
            inputs=(
                (input_to_dict(input_pair[0]), input_to_dict(input_pair[1]))
                if input_pair is not None
                else ()
            ),
        )
        return self.merge_entry(entry)

    def merge_entry(self, entry: CorpusEntry) -> CorpusEntry:
        """Fold one entry in; the merge result is independent of arrival order."""
        existing = self._entries.get(entry.entry_id)
        if existing is None:
            self._entries[entry.entry_id] = entry
            return entry
        existing.energy = max(existing.energy, entry.energy)
        if _origin_rank(entry.origin) < _origin_rank(existing.origin):
            existing.origin = entry.origin
        if entry.inputs and not existing.inputs:
            existing.inputs = entry.inputs
        if existing.parent_id is None and entry.parent_id is not None:
            existing.parent_id = entry.parent_id
        return existing

    def merge(self, other: "Corpus") -> None:
        for entry in other.entries():
            self.merge_entry(entry)

    # -- energy / selection ---------------------------------------------------
    def reward(self, entry_id: str, amount: float) -> None:
        """Bump an entry's energy (its mutants produced new behavior)."""
        entry = self._entries.get(entry_id)
        if entry is not None:
            entry.energy += amount

    def select(self, rng: random.Random) -> Optional[CorpusEntry]:
        """Energy-weighted choice over the corpus (None when empty).

        Selection iterates entries in insertion order with the caller's
        seeded RNG, so identical corpus histories yield identical picks —
        the property the backend-determinism guarantee rests on.
        """
        entries = self.entries()
        if not entries:
            return None
        weights = [max(entry.energy, 1e-6) for entry in entries]
        return rng.choices(entries, weights=weights, k=1)[0]

    # -- seeding --------------------------------------------------------------
    def seed_from_litmus(self, defense: Optional[str] = None, sandbox=None) -> int:
        """Seed the corpus from the directed litmus gadgets.

        ``defense`` restricts seeding to that defense's litmus selection
        (resolved from its spec, so plugin defenses that borrow another
        defense's gadget seed from it too) plus the baseline Spectre gadgets,
        which every defense is meant to stop — mutating them probes the
        defense's actual protection boundary.  ``sandbox`` rebuilds each
        gadget against the fuzzer's own sandbox so masks and witness-input
        sizes match the campaign configuration.  Returns the number of cases
        folded in.
        """
        from repro.litmus.cases import all_cases

        allowed = None
        if defense is not None:
            from repro.defenses.conformance import litmus_case_names

            allowed = set(litmus_case_names(defense))
            try:
                allowed.update(litmus_case_names("baseline"))
            except KeyError:  # pragma: no cover - baseline is always built in
                pass

        added = 0
        for case in all_cases():
            if allowed is not None and case.name not in allowed:
                continue
            case_sandbox = sandbox if sandbox is not None else case.sandbox()
            try:
                program = case.program_factory(case_sandbox)
                input_a, input_b = case.inputs_factory(case_sandbox)
            except (ValueError, KeyError):
                # A gadget that cannot be rebuilt for this sandbox geometry is
                # simply skipped; litmus seeding is best-effort.
                continue
            self.add_program(
                program, origin="litmus", input_pair=(input_a, input_b)
            )
            added += 1
        return added

    # -- statistics -----------------------------------------------------------
    def origin_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for entry in self._entries.values():
            histogram[entry.origin] = histogram.get(entry.origin, 0) + 1
        return histogram

    def total_energy(self) -> float:
        return sum(entry.energy for entry in self._entries.values())

    # -- persistence ----------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        return {
            "format": CORPUS_FORMAT,
            "entries": [
                entry.to_json_dict()
                for entry in sorted(self._entries.values(), key=lambda e: e.entry_id)
            ],
        }

    def save(self, path: str) -> None:
        """Write the corpus atomically (temp file + rename).

        The corpus is the artifact campaigns compound on; an interrupt
        mid-write must never leave a truncated JSON file behind in place of
        the accumulated discoveries.
        """
        from repro.core.io import atomic_write_json

        atomic_write_json(path, self.to_json_dict())

    @staticmethod
    def load(path: str) -> "Corpus":
        from repro.core.io import load_json

        payload = load_json(path, kind="corpus", expected_format=CORPUS_FORMAT)
        return Corpus(
            [CorpusEntry.from_json_dict(entry) for entry in payload["entries"]]
        )

    @staticmethod
    def load_if_exists(path: Optional[str]) -> "Corpus":
        if path and os.path.exists(path):
            return Corpus.load(path)
        return Corpus()
