"""Pluggable generation strategies: random, mutational, hybrid.

:class:`FeedbackProgramSource` sits between :class:`~repro.core.fuzzer.AmuletFuzzer`
and the program generator.  Each round it decides — deterministically, from a
SplitMix64-derived per-round RNG — whether to generate a fresh random program
or to mutate an energy-selected corpus entry, and reports corpus/coverage
events back so entry energies track which lineages keep producing new
behavior.

The per-instance feedback loop is deliberately closed *within* one instance:
instances never exchange corpus entries mid-campaign, so a campaign's merged
corpus and coverage are identical whichever execution backend ran it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple, Union

from repro.core.seeding import splitmix64
from repro.feedback.corpus import Corpus, CorpusEntry
from repro.feedback.mutate import ProgramMutator, mutate_input_pair
from repro.generator.inputs import Input
from repro.generator.program_generator import ProgramGenerator
from repro.isa.program import Program

#: Domain-separation constants mixed into the per-round RNG derivation so the
#: strategy stream never aliases the generator's or input generator's streams.
_STRATEGY_STREAM = 0x5EEDF00D
_HYBRID_MUTATION_PROBABILITY = 0.5


class GenerationStrategy(str, Enum):
    """How the fuzzer picks the next test program."""

    RANDOM = "random"
    MUTATIONAL = "mutational"
    HYBRID = "hybrid"


@dataclass
class RoundProgram:
    """What the source hands the fuzzer for one round."""

    program: Program
    #: Corpus entry the program was mutated from (None for fresh programs).
    parent: Optional[CorpusEntry] = None
    #: Witness-derived inputs to test first (before freshly generated ones).
    seed_inputs: Tuple[Input, ...] = ()
    #: Mutation operators applied (empty for fresh programs).
    operators: Tuple[str, ...] = ()

    @property
    def mutated(self) -> bool:
        return self.parent is not None


class FeedbackProgramSource:
    """Per-round program selection for one fuzzing instance."""

    def __init__(
        self,
        strategy: Union[GenerationStrategy, str],
        generator: ProgramGenerator,
        corpus: Optional[Corpus] = None,
        mutator: Optional[ProgramMutator] = None,
        seed: int = 0,
        hybrid_mutation_probability: float = _HYBRID_MUTATION_PROBABILITY,
    ) -> None:
        self.strategy = GenerationStrategy(strategy)
        self.generator = generator
        self.corpus = corpus if corpus is not None else Corpus()
        self.mutator = mutator or ProgramMutator(generator.config)
        self.seed = seed
        if not 0.0 <= hybrid_mutation_probability <= 1.0:
            raise ValueError("hybrid_mutation_probability must be in [0, 1]")
        self.hybrid_mutation_probability = hybrid_mutation_probability
        self._round = 0
        #: Programs produced per path, for reports.
        self.generated_random = 0
        self.generated_mutated = 0

    # -- round API -------------------------------------------------------------
    def _round_rng(self) -> random.Random:
        return random.Random(
            splitmix64((self.seed & ((1 << 64) - 1)) ^ splitmix64(self._round ^ _STRATEGY_STREAM))
        )

    def next_program(self) -> RoundProgram:
        """Pick the next test program in the instance's deterministic stream."""
        self._round += 1
        if self.strategy is GenerationStrategy.RANDOM or len(self.corpus) == 0:
            return self._fresh()
        rng = self._round_rng()
        if (
            self.strategy is GenerationStrategy.HYBRID
            and rng.random() >= self.hybrid_mutation_probability
        ):
            return self._fresh()
        return self._mutant(rng)

    def _fresh(self) -> RoundProgram:
        self.generated_random += 1
        return RoundProgram(program=self.generator.generate())

    def _mutant(self, rng: random.Random) -> RoundProgram:
        entry = self.corpus.select(rng)
        donor_entry = self.corpus.select(rng)
        donor = donor_entry.program() if donor_entry is not None else None
        program, record = self.mutator.mutate(
            entry.program(),
            rng,
            donor=donor,
            name=f"mut_{entry.entry_id}_{self._round}",
        )
        seed_inputs: Tuple[Input, ...] = ()
        pair = entry.input_pair()
        if pair is not None:
            seed_inputs = mutate_input_pair(pair[0], pair[1], rng)
        self.generated_mutated += 1
        return RoundProgram(
            program=program,
            parent=entry,
            seed_inputs=seed_inputs,
            operators=record.operators,
        )

    # -- feedback --------------------------------------------------------------
    def record_feedback(
        self,
        round_program: RoundProgram,
        new_features: int,
        violation: bool,
        input_pair: Optional[Tuple[Input, Input]] = None,
    ) -> Optional[CorpusEntry]:
        """Fold one round's outcome back into the corpus.

        Interesting programs (new coverage) are added with the novelty count
        as energy; violating programs are added with violation energy and
        their witness pair.  Mutation parents are rewarded when their mutants
        pay off, so productive lineages are revisited more often.
        """
        entry: Optional[CorpusEntry] = None
        program = round_program.program
        parent_id = round_program.parent.entry_id if round_program.parent else None
        if violation:
            entry = self.corpus.add_program(
                program,
                origin="violation",
                parent_id=parent_id,
                input_pair=input_pair,
            )
        elif new_features > 0:
            entry = self.corpus.add_program(
                program,
                origin="interesting",
                energy=float(new_features),
                parent_id=parent_id,
            )
        if entry is not None and round_program.parent is not None:
            self.corpus.reward(
                round_program.parent.entry_id,
                2.0 if violation else 0.5,
            )
        return entry
