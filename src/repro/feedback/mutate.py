"""Mutation operators on test programs and witness input pairs.

The mutational generation strategies derive new test programs from corpus
entries instead of generating from scratch.  All operators preserve the two
invariants the round pipeline depends on:

* **forward-DAG control flow** — no operator adds or retargets branches, so
  mutated programs terminate exactly like generated ones;
* **sandboxed memory** — inserted memory instructions come from the regular
  generator templates (mask instruction included), the mask-widening
  operator only switches between the sandbox's aligned and unaligned masks,
  and a post-mutation repair pass re-establishes the masked-index invariant
  that individual operators can break (deleting a masking ``AND``,
  retargeting its destination, splicing an access without its mask, or
  inserting an index-clobbering instruction between mask and access) by
  inserting a fresh sandbox mask before any access whose index register is
  not provably confined — including accesses inherited from corpus entries
  recorded under a *different* (larger) sandbox geometry.

Every mutation is driven by a caller-supplied seeded RNG; the
:class:`ProgramMutator` itself keeps no hidden state, so the same (program,
seed) pair yields the same mutant on every backend and interpreter mode.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.minimize import copy_location, differing_locations
from repro.generator.config import GeneratorConfig
from repro.generator.inputs import MEMORY_GRANULE, Input
from repro.generator.program_generator import OPERAND_REGISTERS, ProgramGenerator
from repro.isa.instructions import CONDITION_CODES, Instruction, Opcode
from repro.isa.operands import Immediate, MemoryOperand, Register
from repro.isa.program import BasicBlock, Program

#: Relative frequencies of the mutation operators.
DEFAULT_OPERATOR_WEIGHTS = {
    "insert": 3.0,
    "delete": 2.0,
    "splice": 2.0,
    "operand_tweak": 3.0,
    "immediate_tweak": 2.0,
    "branch_flip": 2.0,
    "mask_widen": 1.0,
}


def _clone_blocks(program: Program) -> List[BasicBlock]:
    """Deep-enough copy: fresh blocks and instructions, shared frozen operands."""
    return [
        BasicBlock(
            block.name,
            [copy.copy(instruction) for instruction in block.instructions],
            copy.copy(block.terminator) if block.terminator is not None else None,
        )
        for block in program.blocks
    ]


def _body_positions(blocks: List[BasicBlock]) -> List[Tuple[int, int]]:
    """(block index, instruction index) of every non-terminator instruction."""
    return [
        (block_index, instruction_index)
        for block_index, block in enumerate(blocks)
        for instruction_index in range(len(block.instructions))
    ]


@dataclass
class MutationRecord:
    """Which operators produced a mutant (for logs and lineage debugging)."""

    operators: Tuple[str, ...] = ()


class ProgramMutator:
    """Applies randomized structural mutations to a test program."""

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        operator_weights: Optional[dict] = None,
        max_operations: int = 3,
    ) -> None:
        self.config = config or GeneratorConfig()
        self.operator_weights = dict(operator_weights or DEFAULT_OPERATOR_WEIGHTS)
        if max_operations < 1:
            raise ValueError("max_operations must be at least 1")
        self.max_operations = max_operations
        # The insert operator reuses the generator's weighted templates; the
        # generator instance is stateless here (the caller's RNG drives it).
        self._template_source = ProgramGenerator(self.config)

    # -- public API -----------------------------------------------------------
    def mutate(
        self,
        program: Program,
        rng: random.Random,
        donor: Optional[Program] = None,
        name: Optional[str] = None,
    ) -> Tuple[Program, MutationRecord]:
        """Produce one mutant of ``program`` (1..max_operations operators).

        ``donor`` supplies foreign instructions for the splice operator;
        without one, splicing falls back to intra-program copying.
        """
        blocks = _clone_blocks(program)
        operations = rng.randint(1, self.max_operations)
        applied: List[str] = []
        names = list(self.operator_weights)
        weights = [self.operator_weights[key] for key in names]
        for _ in range(operations):
            operator = rng.choices(names, weights)[0]
            if getattr(self, f"_op_{operator}")(blocks, rng, donor):
                applied.append(operator)
        if not applied:
            # Every drawn operator was inapplicable (e.g. a program with no
            # immediates or branches); insertion always applies.
            self._op_insert(blocks, rng, donor)
            applied.append("insert")
        self._repair_sandbox_masks(blocks)
        mutant_name = name if name is not None else program.name + "_mut"
        return (
            Program(blocks, code_base=program.code_base, name=mutant_name),
            MutationRecord(operators=tuple(applied)),
        )

    # -- invariant repair ------------------------------------------------------
    def _is_confining_and(self, instruction: Instruction) -> bool:
        """Does the instruction confine its destination to the sandbox?

        True for ``AND reg, imm`` where the immediate is a submask of the
        sandbox mask — this covers both sandbox masks and the small ALU
        immediates (<= 0xff) the generator emits.
        """
        return (
            instruction.opcode is Opcode.AND
            and len(instruction.operands) == 2
            and isinstance(instruction.operands[0], Register)
            and isinstance(instruction.operands[1], Immediate)
            and instruction.operands[1].value & ~self.config.sandbox.mask == 0
        )

    def _repair_sandbox_masks(self, blocks: List[BasicBlock]) -> None:
        """Insert sandbox masks before accesses whose index is unconfined.

        Conservative linear scan per block: an index register counts as
        confined only when its most recent write *within the block* was a
        confining ``AND`` (block entry state is treated as unconfined, which
        at worst inserts a redundant mask).  Keeps every mutant's memory
        footprint inside the *current* sandbox whatever the operators did —
        and whatever sandbox the parent corpus entry was recorded under.
        """
        aligned_mask = self.config.sandbox.aligned_mask
        for block in blocks:
            confined: set = set()
            index = 0
            while index < len(block.instructions):
                instruction = block.instructions[index]
                memory = instruction.memory_operand
                if (
                    memory is not None
                    and memory.index is not None
                    and memory.index not in confined
                ):
                    block.instructions.insert(
                        index,
                        Instruction(
                            Opcode.AND,
                            (Register(memory.index), Immediate(aligned_mask)),
                        ),
                    )
                    confined.add(memory.index)
                    index += 1  # re-visit the access for its own write effect
                    continue
                if self._is_confining_and(instruction):
                    confined.add(instruction.operands[0].name)
                else:
                    destination = instruction.destination_register()
                    if destination is not None:
                        confined.discard(destination)
                index += 1

    # -- operators ------------------------------------------------------------
    # Each operator mutates ``blocks`` in place and returns True when it
    # actually changed something (False lets mutate() re-draw).

    def _op_insert(self, blocks, rng, donor) -> bool:
        """Insert one generator-template instruction sequence."""
        del donor
        sequence = self._template_source.random_instruction_sequence(rng)
        block = blocks[rng.randrange(len(blocks))]
        position = rng.randint(0, len(block.instructions))
        block.instructions[position:position] = sequence
        return True

    def _op_delete(self, blocks, rng, donor) -> bool:
        """Remove one body instruction (terminators stay untouched)."""
        del donor
        positions = _body_positions(blocks)
        if not positions:
            return False
        block_index, instruction_index = positions[rng.randrange(len(positions))]
        del blocks[block_index].instructions[instruction_index]
        return True

    def _op_splice(self, blocks, rng, donor) -> bool:
        """Copy a run of body instructions from the donor (or the program itself).

        Branches are never spliced: block bodies can contain conditional
        branches (the generator's Revizor pattern), and re-homing one into an
        earlier block would create a backward edge — a potential infinite
        loop — or a dangling label in a donor-to-target splice.
        """
        source_blocks = donor.blocks if donor is not None else blocks
        source_positions = [
            (block, index)
            for block in source_blocks
            for index in range(len(block.instructions))
        ]
        if not source_positions:
            return False
        source_block, start = source_positions[rng.randrange(len(source_positions))]
        length = rng.randint(1, min(4, len(source_block.instructions) - start))
        spliced = [
            copy.copy(instruction)
            for instruction in source_block.instructions[start : start + length]
            if not instruction.is_branch
        ]
        if not spliced:
            return False
        target = blocks[rng.randrange(len(blocks))]
        position = rng.randint(0, len(target.instructions))
        target.instructions[position:position] = spliced
        return True

    def _op_operand_tweak(self, blocks, rng, donor) -> bool:
        """Retarget one register operand to a different operand register."""
        del donor
        candidates = []
        for block in blocks:
            for instruction in block.instructions:
                for position, operand in enumerate(instruction.operands):
                    if isinstance(operand, Register) and operand.name in OPERAND_REGISTERS:
                        candidates.append((instruction, position, operand))
        if not candidates:
            return False
        instruction, position, operand = candidates[rng.randrange(len(candidates))]
        replacement = rng.choice(
            [name for name in OPERAND_REGISTERS if name != operand.name]
        )
        operands = list(instruction.operands)
        operands[position] = Register(replacement)
        instruction.operands = tuple(operands)
        return True

    def _op_immediate_tweak(self, blocks, rng, donor) -> bool:
        """Perturb one immediate (skipping sandbox masks, handled by mask_widen)."""
        del donor
        masks = {self.config.sandbox.mask, self.config.sandbox.aligned_mask}
        candidates = []
        for block in blocks:
            for instruction in block.instructions:
                for position, operand in enumerate(instruction.operands):
                    if isinstance(operand, Immediate) and operand.value not in masks:
                        candidates.append((instruction, position, operand))
        if not candidates:
            return False
        instruction, position, operand = candidates[rng.randrange(len(candidates))]
        tweak = rng.choice(("increment", "decrement", "bitflip", "fresh"))
        if tweak == "increment":
            value = (operand.value + 1) & 0xFF
        elif tweak == "decrement":
            value = (operand.value - 1) & 0xFF
        elif tweak == "bitflip":
            value = operand.value ^ (1 << rng.randrange(8))
        else:
            value = rng.randint(0, 255)
        operands = list(instruction.operands)
        operands[position] = Immediate(value)
        instruction.operands = tuple(operands)
        return True

    def _op_branch_flip(self, blocks, rng, donor) -> bool:
        """Flip the condition code of one conditional instruction (JCC/CMOV/SETCC)."""
        del donor
        candidates = []
        for block in blocks:
            for instruction in block.instructions:
                if instruction.condition is not None:
                    candidates.append(instruction)
            if block.terminator is not None and block.terminator.condition is not None:
                candidates.append(block.terminator)
        if not candidates:
            return False
        instruction = candidates[rng.randrange(len(candidates))]
        instruction.condition = rng.choice(
            [code for code in CONDITION_CODES if code != instruction.condition]
        )
        return True

    def _op_mask_widen(self, blocks, rng, donor) -> bool:
        """Toggle one sandbox mask between its aligned and unaligned form.

        Widening an aligned mask lets the access become unaligned (possibly
        line-crossing — the UV4 split-request territory); narrowing re-aligns
        it.  Either way the access stays inside the sandbox.
        """
        del donor
        sandbox = self.config.sandbox
        candidates = []
        for block in blocks:
            for instruction in block.instructions:
                if instruction.opcode is not Opcode.AND or len(instruction.operands) != 2:
                    continue
                destination, source = instruction.operands
                if not isinstance(destination, Register) or not isinstance(source, Immediate):
                    continue
                if source.value in (sandbox.mask, sandbox.aligned_mask):
                    candidates.append((instruction, source))
        if not candidates:
            return False
        instruction, source = candidates[rng.randrange(len(candidates))]
        widened = (
            sandbox.mask if source.value == sandbox.aligned_mask else sandbox.aligned_mask
        )
        instruction.operands = (instruction.operands[0], Immediate(widened))
        return True


# -- input-pair mutation -------------------------------------------------------

def mutate_input_pair(
    input_a: Input,
    input_b: Input,
    rng: random.Random,
    value_bits: int = 16,
) -> Tuple[Input, Input]:
    """Derive a fresh witness pair from a known one.

    Reuses the minimization machinery's location space
    (:func:`~repro.core.minimize.differing_locations` /
    :func:`~repro.core.minimize.copy_location`): with equal probability the
    mutation either *narrows* the pair (equalising one differing location —
    the minimizer's shrink move, which homes in on the secret-carrying
    location) or *shifts* it (writing the same random value to one location
    of both inputs, moving the pair to a nearby point of the input space
    while preserving their relative difference).
    """
    differing = differing_locations(input_a, input_b)
    # Narrow only when more than one location differs: equalising the last
    # differing location would make the pair identical — a pair that can
    # never witness a violation (minimized witnesses are often already down
    # to the single secret-carrying location).
    if len(differing) > 1 and rng.random() < 0.5:
        location = differing[rng.randrange(len(differing))]
        return input_a, copy_location(input_a, input_b, location)

    # Shift: perturb one *agreeing* location identically in both inputs.
    # Locations where the pair differs are off-limits — writing the same
    # value there would erase (part of) the difference the pair encodes.
    differing_regs = {which for kind, which in differing if kind == "reg"}
    differing_offsets = {which for kind, which in differing if kind == "mem"}
    registers_a = input_a.register_dict()
    register_names = sorted(set(registers_a) - differing_regs)
    granule_offsets = [
        offset
        for offset in range(0, len(input_a.memory), MEMORY_GRANULE)
        if offset not in differing_offsets
    ]
    if register_names and (not granule_offsets or rng.random() < 0.5):
        name = register_names[rng.randrange(len(register_names))]
        value = rng.getrandbits(value_bits)
        registers_b = input_b.register_dict()
        registers_a[name] = value
        registers_b[name] = value
        return (
            Input.create(registers_a, input_a.memory, seed=input_a.seed),
            Input.create(registers_b, input_b.memory, seed=input_b.seed),
        )
    if not granule_offsets:
        return input_a, input_b
    offset = granule_offsets[rng.randrange(len(granule_offsets))]
    word = rng.getrandbits(value_bits).to_bytes(MEMORY_GRANULE, "little")
    memory_a = bytearray(input_a.memory)
    memory_b = bytearray(input_b.memory)
    memory_a[offset : offset + MEMORY_GRANULE] = word
    memory_b[offset : offset + MEMORY_GRANULE] = word
    return (
        Input(registers=input_a.registers, memory=bytes(memory_a), seed=input_a.seed),
        Input(registers=input_b.registers, memory=bytes(memory_b), seed=input_b.seed),
    )
