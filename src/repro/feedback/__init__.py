"""Coverage feedback, persistent corpus and mutation-based generation.

This package closes the loop the random generator leaves open: signals the
round pipeline already produces (contract-class structure, speculation
profiles, per-defense micro-architectural events) are hashed into a
:class:`~repro.feedback.coverage.CoverageTracker` bitmap; programs that
exhibit new behavior (or witness violations) enter a content-addressed,
disk-persistent :class:`~repro.feedback.corpus.Corpus`; and the
:class:`~repro.feedback.strategy.FeedbackProgramSource` mutates
energy-selected corpus entries via :class:`~repro.feedback.mutate.ProgramMutator`
instead of always generating from scratch.
"""

from repro.feedback.corpus import Corpus, CorpusEntry, program_id
from repro.feedback.coverage import (
    DEFAULT_MAP_BITS,
    CoverageTracker,
    RoundCoverage,
    round_features,
)
from repro.feedback.mutate import ProgramMutator, mutate_input_pair
from repro.feedback.strategy import (
    FeedbackProgramSource,
    GenerationStrategy,
    RoundProgram,
)

__all__ = [
    "Corpus",
    "CorpusEntry",
    "program_id",
    "CoverageTracker",
    "RoundCoverage",
    "round_features",
    "DEFAULT_MAP_BITS",
    "ProgramMutator",
    "mutate_input_pair",
    "FeedbackProgramSource",
    "GenerationStrategy",
    "RoundProgram",
]
