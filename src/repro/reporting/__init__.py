"""Reporting utilities: paper-style tables and the experiment registry."""

from repro.reporting.tables import (
    format_table,
    render_breakdown_table,
    render_conformance_table,
    render_triage_table,
)
from repro.reporting.loc import count_defense_loc, loc_table, spec_kit_loc
from repro.reporting.experiments import EXPERIMENTS, Experiment, get_experiment

__all__ = [
    "format_table",
    "render_breakdown_table",
    "render_conformance_table",
    "render_triage_table",
    "spec_kit_loc",
    "count_defense_loc",
    "loc_table",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
]
