"""Lines-of-code accounting for the defense integrations (Table 11).

The paper's Table 11 reports how many lines had to be added to each gem5
defense to integrate it with AMuLeT, split into test harness, socket-based
communication and trace extraction.  In this repository the equivalent split
is: the defense model itself (the behaviour layered onto the core), the
executor plumbing shared by all defenses, and the trace extraction code.
The absolute numbers differ from the paper (different languages, different
simulators); the point reproduced is that the per-defense integration cost
is small and mostly shared.
"""

from __future__ import annotations

import inspect
from typing import Dict, List

from repro.defenses import registry as defense_registry
from repro.executor import executor as executor_module
from repro.executor import traces as traces_module


def _count_module_loc(module) -> int:
    """Count non-blank, non-comment source lines of a module."""
    source = inspect.getsource(module)
    count = 0
    in_docstring = False
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith('"""') or line.startswith("'''"):
            # Toggle docstring state; single-line docstrings toggle twice.
            quote = line[:3]
            if in_docstring:
                in_docstring = False
                continue
            if line.count(quote) >= 2 and len(line) > 3:
                continue
            in_docstring = True
            continue
        if in_docstring:
            continue
        if line.startswith("#"):
            continue
        count += 1
    return count


def count_defense_loc(defense_name: str) -> Dict[str, int]:
    """LoC breakdown for one defense: defense model, executor, trace extraction."""
    defense_class = defense_registry.defense_class(defense_name)
    defense_module = inspect.getmodule(defense_class)
    return {
        "defense_model": _count_module_loc(defense_module),
        "executor_plumbing": _count_module_loc(executor_module),
        "trace_extraction": _count_module_loc(traces_module),
    }


def loc_table() -> List[Dict[str, object]]:
    """Table-11-style rows for every defense."""
    rows: List[Dict[str, object]] = []
    for name in defense_registry.available_defenses():
        if name == "baseline":
            continue
        breakdown = count_defense_loc(name)
        rows.append(
            {
                "defense": name,
                "defense_model_loc": breakdown["defense_model"],
                "executor_plumbing_loc": breakdown["executor_plumbing"],
                "trace_extraction_loc": breakdown["trace_extraction"],
                "total_loc": sum(breakdown.values()),
            }
        )
    return rows
