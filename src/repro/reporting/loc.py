"""Lines-of-code accounting for the defense integrations (Table 11).

The paper's Table 11 reports how many lines had to be added to each gem5
defense to integrate it with AMuLeT, split into test harness, socket-based
communication and trace extraction.  In this repository the equivalent split
is: the defense's own declaration (since the spec-kit refactor, a
:class:`~repro.defenses.spec.DefenseSpec` plus optional escape-hatch hooks),
the shared spec compiler that turns declarations into behaviour, the
executor plumbing shared by all defenses, and the trace extraction code.
The absolute numbers differ from the paper (different languages, different
simulators); the point reproduced is that the per-defense integration cost
is small and mostly shared — and the spec kit pushes the per-defense part
down to the size of its declaration.
"""

from __future__ import annotations

import ast
import inspect
from typing import Dict, List, Optional

from repro.defenses import compile as compile_module
from repro.defenses import registry as defense_registry
from repro.defenses import spec as spec_module
from repro.executor import executor as executor_module
from repro.executor import traces as traces_module


def _count_module_loc(module) -> int:
    """Count non-blank, non-comment source lines of a module."""
    source = inspect.getsource(module)
    count = 0
    in_docstring = False
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith('"""') or line.startswith("'''"):
            # Toggle docstring state; single-line docstrings toggle twice.
            quote = line[:3]
            if in_docstring:
                in_docstring = False
                continue
            if line.count(quote) >= 2 and len(line) > 3:
                continue
            in_docstring = True
            continue
        if in_docstring:
            continue
        if line.startswith("#"):
            continue
        count += 1
    return count


def _spec_statement_loc(module) -> Optional[int]:
    """Source lines of the module's ``DefenseSpec(...)`` declaration.

    Counts the non-blank, non-comment lines of every top-level assignment
    whose value is a ``DefenseSpec(...)`` call — the "spec lines" a new
    defense costs, excluding imports, hooks and the compile call.  Returns
    None when the module declares no spec (hand-written defenses).
    """
    source = inspect.getsource(module)
    lines = source.splitlines()
    tree = ast.parse(source)
    total = 0
    found = False
    for node in tree.body:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        func_name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if func_name != "DefenseSpec":
            continue
        found = True
        for raw_line in lines[node.lineno - 1 : node.end_lineno]:
            line = raw_line.strip()
            if line and not line.startswith("#"):
                total += 1
    return total if found else None


def spec_kit_loc() -> int:
    """Shared spec-kit cost: the declaration vocabulary plus the compiler."""
    return _count_module_loc(spec_module) + _count_module_loc(compile_module)


def count_defense_loc(defense_name: str) -> Dict[str, Optional[int]]:
    """LoC breakdown for one defense.

    ``spec_loc`` is the defense's own ``DefenseSpec(...)`` declaration (None
    for hand-written defenses); ``defense_model`` is its whole module
    including hooks; ``spec_kit`` / ``executor_plumbing`` /
    ``trace_extraction`` are shared across all defenses.
    """
    defense_class = defense_registry.defense_class(defense_name)
    defense_module = inspect.getmodule(defense_class)
    return {
        "spec_loc": _spec_statement_loc(defense_module),
        "defense_model": _count_module_loc(defense_module),
        "spec_kit": spec_kit_loc(),
        "executor_plumbing": _count_module_loc(executor_module),
        "trace_extraction": _count_module_loc(traces_module),
    }


def loc_table(include_plugins: bool = True) -> List[Dict[str, object]]:
    """Table-11-style rows for every defense."""
    rows: List[Dict[str, object]] = []
    for name in defense_registry.available_defenses():
        if name == "baseline":
            continue
        if not include_plugins and defense_registry.registry.source(name) != "builtin":
            continue
        breakdown = count_defense_loc(name)
        shared = (
            breakdown["spec_kit"]
            + breakdown["executor_plumbing"]
            + breakdown["trace_extraction"]
        )
        rows.append(
            {
                "defense": name,
                "spec_loc": breakdown["spec_loc"],
                "defense_model_loc": breakdown["defense_model"],
                "spec_kit_loc": breakdown["spec_kit"],
                "executor_plumbing_loc": breakdown["executor_plumbing"],
                "trace_extraction_loc": breakdown["trace_extraction"],
                "total_loc": breakdown["defense_model"] + shared,
            }
        )
    return rows
