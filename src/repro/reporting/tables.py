"""Plain-text table rendering in the style of the paper's result tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "YES" if value else "NO"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths: Dict[str, int] = {column: len(column) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_format_value(row.get(column)) for column in columns]
        rendered_rows.append(rendered)
        for column, cell in zip(columns, rendered):
            widths[column] = max(widths[column], len(cell))
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for rendered in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[column]) for column, cell in zip(columns, rendered))
        )
    return "\n".join(lines)


def render_breakdown_table(
    breakdowns: Mapping[str, Mapping[str, Mapping[str, float]]]
) -> str:
    """Render Table-2-style time breakdowns.

    ``breakdowns`` maps a configuration label (e.g. "Naive", "Opt") to the
    output of :meth:`repro.executor.startup.ModeledTime.breakdown`.
    """
    components: List[str] = []
    for breakdown in breakdowns.values():
        for component in breakdown:
            if component not in components:
                components.append(component)
    rows = []
    for component in components:
        row: Dict[str, object] = {"Component": component}
        for label, breakdown in breakdowns.items():
            entry = breakdown.get(component, {"seconds": 0.0, "percent": 0.0})
            row[label] = f"{entry['seconds']:.1f} s ({entry['percent']:.1f}%)"
        rows.append(row)
    total_row: Dict[str, object] = {"Component": "Total"}
    for label, breakdown in breakdowns.items():
        total = sum(entry["seconds"] for entry in breakdown.values())
        total_row[label] = f"{total:.1f} s (100%)"
    rows.append(total_row)
    return format_table(rows)


def rows_to_markdown(rows: Iterable[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Render rows as a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    lines = ["| " + " | ".join(columns) + " |", "| " + " | ".join("---" for _ in columns) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(_format_value(row.get(column)) for column in columns) + " |")
    return "\n".join(lines)


def render_conformance_table(reports) -> str:
    """Render generated conformance harness results, one row per check.

    ``reports`` is an iterable of
    :class:`~repro.defenses.conformance.ConformanceReport`; litmus rows come
    first (with their expectations), followed by one row per smoke campaign.
    """
    rows: List[Dict[str, object]] = []
    for report in reports:
        for check in report.litmus:
            rows.append(
                {
                    "defense": report.defense,
                    "check": f"litmus:{check.case}",
                    "variant": check.variant,
                    "violation": check.violation,
                    "expected": check.expected,
                    "ok": check.ok,
                }
            )
        for smoke in report.smoke:
            rows.append(
                {
                    "defense": report.defense,
                    "check": f"smoke:{smoke.contract}",
                    "variant": smoke.variant,
                    "violation": smoke.detected,
                    "expected": None,
                    "ok": True,
                }
            )
    return format_table(
        rows, ["defense", "check", "variant", "violation", "expected", "ok"]
    )


def render_triage_table(report) -> str:
    """Render a triage report's clusters as a paper-style text table.

    One row per unique-signature cluster: how many violations share the root
    cause, the representative's witness size before/after minimization, and
    the leaking access identified by first-divergence analysis.  ``report``
    is a :class:`~repro.triage.report.TriageReport` (typed loosely to keep
    this module dependency-free).
    """
    rows: List[Dict[str, object]] = []
    for cluster in report.clusters:
        entry = report.violations[cluster.representative]
        rows.append(
            {
                "cluster": f"x{cluster.size}",
                "defense": entry.defense,
                "contract": entry.contract,
                "reproduced": entry.reproduced,
                "instructions": (
                    f"{entry.original_instruction_count}"
                    f"->{entry.minimized_instruction_count}"
                    if entry.minimized_instruction_count is not None
                    else "-"
                ),
                "leaking_pc": (
                    f"{entry.leaking_pc:#x}" if entry.leaking_pc is not None else None
                ),
                "kind": entry.leaking_kind,
                "amplified": entry.amplification_level,
            }
        )
    return format_table(rows)
