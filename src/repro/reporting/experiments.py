"""Registry mapping every reproduced table/figure to its bench target.

This is the machine-readable version of DESIGN.md's per-experiment index:
each entry names the paper artefact, the workload it uses, the modules that
implement it, and the benchmark file that regenerates it.  ``examples/
experiment_index.py`` prints this registry, and the test suite checks that
every referenced benchmark file actually exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Experiment:
    """One reproduced table or figure from the paper."""

    identifier: str
    title: str
    workload: str
    modules: Tuple[str, ...]
    bench_target: str
    notes: str = ""


EXPERIMENTS: Tuple[Experiment, ...] = (
    Experiment(
        identifier="table2",
        title="Per-test-program time breakdown, Naive vs Opt",
        workload="baseline O3, small campaign, modeled gem5 time",
        modules=("repro.executor.executor", "repro.executor.startup"),
        bench_target="benchmarks/bench_table2_naive_vs_opt.py",
        notes="Absolute seconds are modeled; the Naive=startup-dominated vs "
        "Opt=simulation-dominated shape is the reproduced result.",
    ),
    Experiment(
        identifier="table3",
        title="Baseline O3 campaigns: Naive vs Opt, CT-SEQ vs CT-COND",
        workload="baseline O3, scaled-down campaign per contract and mode",
        modules=("repro.core.campaign", "repro.core.fuzzer"),
        bench_target="benchmarks/bench_table3_baseline.py",
    ),
    Experiment(
        identifier="table4",
        title="Defense campaigns: detection, unique violations, throughput",
        workload="baseline + 4 defenses, scaled-down campaigns",
        modules=("repro.core.campaign", "repro.defenses"),
        bench_target="benchmarks/bench_table4_defenses.py",
    ),
    Experiment(
        identifier="table5",
        title="Micro-architectural trace format comparison",
        workload="baseline O3, four trace formats",
        modules=("repro.executor.traces", "repro.core.campaign"),
        bench_target="benchmarks/bench_table5_trace_formats.py",
    ),
    Experiment(
        identifier="table6",
        title="InvisiSpec (patched) with reduced structures (amplification)",
        workload="patched InvisiSpec; default, 2-way L1D, 2-way+2-MSHR",
        modules=("repro.core.amplification", "repro.defenses.invisispec"),
        bench_target="benchmarks/bench_table6_amplification.py",
    ),
    Experiment(
        identifier="table7_fig6",
        title="UV2 MSHR-interference walkthrough",
        workload="directed litmus invisispec_mshr_interference",
        modules=("repro.litmus", "repro.defenses.invisispec"),
        bench_target="benchmarks/bench_case_studies.py",
    ),
    Experiment(
        identifier="table8",
        title="CleanupSpec violation types, original vs patched",
        workload="directed litmuses UV3/UV4/UV5 under both bug configurations",
        modules=("repro.litmus", "repro.defenses.cleanupspec"),
        bench_target="benchmarks/bench_table8_cleanupspec.py",
    ),
    Experiment(
        identifier="table9",
        title="UV5 too-much-cleaning walkthrough",
        workload="directed litmus cleanupspec_too_much_cleaning",
        modules=("repro.litmus",),
        bench_target="benchmarks/bench_case_studies.py",
    ),
    Experiment(
        identifier="table10",
        title="KV2 unXpec walkthrough",
        workload="directed litmus cleanupspec_unxpec (L1I trace)",
        modules=("repro.litmus",),
        bench_target="benchmarks/bench_case_studies.py",
    ),
    Experiment(
        identifier="table11",
        title="Lines of code per defense integration",
        workload="static count over the defense and executor modules",
        modules=("repro.reporting.loc",),
        bench_target="benchmarks/bench_table11_loc.py",
    ),
    Experiment(
        identifier="fig4",
        title="UV1 speculative-eviction example",
        workload="directed litmus invisispec_eviction",
        modules=("repro.litmus", "repro.defenses.invisispec"),
        bench_target="benchmarks/bench_case_studies.py",
    ),
    Experiment(
        identifier="fig8",
        title="UV6 SpecLFB first-load example",
        workload="directed litmus speclfb_first_load",
        modules=("repro.litmus", "repro.defenses.speclfb"),
        bench_target="benchmarks/bench_case_studies.py",
    ),
    Experiment(
        identifier="fig9",
        title="KV3 STT tainted-store-TLB example",
        workload="directed litmus stt_store_tlb",
        modules=("repro.litmus", "repro.defenses.stt"),
        bench_target="benchmarks/bench_case_studies.py",
    ),
    Experiment(
        identifier="ablation_priming",
        title="Cache priming (fill) vs clean start (flush)",
        workload="baseline O3, identical campaign with both priming strategies",
        modules=("repro.executor.executor",),
        bench_target="benchmarks/bench_ablation_priming.py",
        notes="Design-choice ablation called out in DESIGN.md.",
    ),
    Experiment(
        identifier="ablation_boosting",
        title="Contract-preserving input boosting vs purely random inputs",
        workload="baseline O3, identical campaign with and without boosting",
        modules=("repro.generator.inputs", "repro.model.taint"),
        bench_target="benchmarks/bench_ablation_boosting.py",
        notes="Design-choice ablation called out in DESIGN.md.",
    ),
)

_BY_ID: Dict[str, Experiment] = {experiment.identifier: experiment for experiment in EXPERIMENTS}


def get_experiment(identifier: str) -> Experiment:
    if identifier not in _BY_ID:
        known = ", ".join(sorted(_BY_ID))
        raise KeyError(f"unknown experiment {identifier!r}; known: {known}")
    return _BY_ID[identifier]
