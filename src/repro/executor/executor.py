"""The simulator executor: runs test cases and extracts micro-architectural traces."""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.defenses.base import Defense
from repro.defenses.registry import create_defense
from repro.executor.startup import SIMULATE, STARTUP, TRACE_EXTRACTION, ModeledTime, TimeModel
from repro.executor.traces import BASELINE_TRACE, TraceConfig, UarchTrace, build_trace
from repro.generator.inputs import Input
from repro.generator.sandbox import Sandbox
from repro.isa.program import Program
from repro.uarch.config import UarchConfig
from repro.uarch.core import O3Core, SimulationResult, materialize_uarch_context


class ExecutionMode(str, Enum):
    """Naive restarts the simulator per test case; Opt restarts per program."""

    NAIVE = "naive"
    OPT = "opt"


class PrimeStrategy(str, Enum):
    """How the data cache is initialised before each test case.

    ``FILL`` loads every L1D set with addresses from outside the sandbox (the
    paper's preferred strategy: leaks become visible both as installs and as
    evictions).  ``FLUSH`` starts from empty caches (the strategy used for
    CleanupSpec and SpecLFB, whose simulator versions support direct
    invalidation).  ``NONE`` leaves whatever the previous test left behind.
    """

    FILL = "fill"
    FLUSH = "flush"
    NONE = "none"


#: Base address of the priming region; chosen to conflict with sandbox sets
#: while being clearly outside any sandbox (max sandbox is 128 pages).
PRIME_REGION_BASE = 0x1000000

#: The default priming strategy follows Section 3.5 of the paper and is
#: declared by each defense (``Defense.recommended_prime_strategy``, set from
#: the defense's spec) rather than kept in a hard-coded per-name table here —
#: entry-point plugins get the right priming without touching the executor.


@dataclass
class ExecutionRecord:
    """The executor's output for one test case.

    ``uarch_context`` is the predictor state the run *started* from.  The
    executor stores it as a :class:`~repro.uarch.core.LazyUarchContext`
    (O(1) journal marks); consumers that actually need the dict — the
    detector stamping violation witnesses, validation re-runs — call
    :meth:`materialized_context` (or
    :func:`~repro.uarch.core.materialize_uarch_context` on the attribute).
    """

    trace: UarchTrace
    result: SimulationResult
    uarch_context: object

    def materialized_context(self) -> Optional[dict]:
        return materialize_uarch_context(self.uarch_context)


class SimulatorExecutor:
    """Generates micro-architectural traces for (program, input) test cases.

    The executor owns the simulator lifecycle.  In Opt mode one
    :class:`O3Core` is constructed per test program (`load_program`) and
    reused for every input — registers and sandbox memory are simply
    overwritten, and predictor state carries over.  In Naive mode a fresh
    core (and defense instance) is constructed for every single input.
    """

    def __init__(
        self,
        defense_factory: Callable[[], Defense] | str = "baseline",
        uarch_config: Optional[UarchConfig] = None,
        sandbox: Optional[Sandbox] = None,
        trace_config: TraceConfig = BASELINE_TRACE,
        mode: ExecutionMode = ExecutionMode.OPT,
        prime_strategy: Optional[PrimeStrategy] = None,
        time_model: Optional[TimeModel] = None,
        specialize: bool = True,
    ) -> None:
        if isinstance(defense_factory, str):
            defense_name = defense_factory
            self.defense_factory: Callable[[], Defense] = lambda: create_defense(defense_name)
        else:
            self.defense_factory = defense_factory
        self.uarch_config = uarch_config or UarchConfig()
        self.sandbox = sandbox or Sandbox()
        self.trace_config = trace_config
        self.mode = ExecutionMode(mode)
        #: Compile per-program specialized execution artifacts (the default);
        #: False forces the generic interpreter everywhere (--no-specialize).
        self.specialize = specialize
        probe_defense = self.defense_factory()
        self.defense_name = probe_defense.name
        if prime_strategy is None:
            prime_strategy = getattr(
                probe_defense, "recommended_prime_strategy", PrimeStrategy.FILL
            )
        self.prime_strategy = PrimeStrategy(prime_strategy)
        self.time = ModeledTime(model=time_model or TimeModel())

        self._program: Optional[Program] = None
        self._core: Optional[O3Core] = None
        self.simulator_starts = 0
        self.test_cases_executed = 0
        self.test_cases_skipped = 0

    # -- lifecycle ------------------------------------------------------------
    def load_program(self, program: Program) -> None:
        """Prepare the executor for a new test program."""
        self._program = program
        if self.mode is ExecutionMode.OPT:
            self._core = self._start_simulator(program)
        else:
            self._core = None

    def _start_simulator(self, program: Program) -> O3Core:
        started = time.perf_counter()
        core = O3Core(
            program,
            config=self.uarch_config,
            defense=self.defense_factory(),
            sandbox=self.sandbox,
            specialize=self.specialize,
        )
        self.simulator_starts += 1
        self.time.charge_startup()
        self.time.add_wall_clock(STARTUP, time.perf_counter() - started)
        return core

    # -- cache priming ----------------------------------------------------------
    def _prime(self, core: O3Core) -> int:
        """Reset/prime the memory hierarchy before a test case.

        Returns the number of "instructions" the priming would have cost if
        done with explicit loads, which the time model charges to simulation
        (the paper resets the cache with real instructions and notes the
        resulting 10x increase in instructions per test).
        """
        if self.prime_strategy is PrimeStrategy.FILL:
            return core.memory.reset_and_prime(PRIME_REGION_BASE)
        core.memory.reset_caches()
        return 0

    # -- execution -----------------------------------------------------------------
    def run_input(
        self,
        test_input: Input,
        uarch_context: Optional[dict] = None,
    ) -> ExecutionRecord:
        """Run one input of the current program and extract its trace.

        ``uarch_context`` optionally forces the predictor state before the
        run — used when validating violations (re-running two inputs from the
        same initial micro-architectural context).
        """
        if self._program is None:
            raise RuntimeError("load_program() must be called before run_input()")

        if self.mode is ExecutionMode.NAIVE or self._core is None:
            core = self._start_simulator(self._program)
            if self.mode is ExecutionMode.OPT:
                self._core = core
        else:
            core = self._core

        if uarch_context is not None:
            # restore_uarch_context materializes the (possibly lazy) context
            # before invalidating the journals, so forcing a context captured
            # on this very core is safe.
            core.restore_uarch_context(uarch_context)
        if self.mode is ExecutionMode.NAIVE:
            # The core is brand new (or just restored): its state dicts are
            # tiny, and an eager copy avoids keeping every per-input core's
            # predictors and journals alive for the rest of the round.
            context_before = core.save_uarch_context()
        else:
            context_before = core.lazy_uarch_context()

        priming_instructions = self._prime(core)

        simulate_started = time.perf_counter()
        result = core.run(test_input)
        self.time.charge_simulation(
            priming_instructions + result.stats.instructions_committed
        )
        self.time.add_wall_clock(SIMULATE, time.perf_counter() - simulate_started)

        extraction_started = time.perf_counter()
        trace = build_trace(core, self.trace_config)
        self.time.charge_trace_extraction()
        self.time.add_wall_clock(TRACE_EXTRACTION, time.perf_counter() - extraction_started)

        self.test_cases_executed += 1
        return ExecutionRecord(trace=trace, result=result, uarch_context=context_before)

    def run_batch(self, inputs: List[Input]) -> List[ExecutionRecord]:
        """Run a batch of inputs of the loaded program back-to-back.

        In Opt mode every input reuses the one already-constructed core (and
        its decoded/compiled program), so the per-program setup cost is paid
        once for the whole batch — this is how the fuzzer routes a contract-
        equivalence class's executable entries through the simulator.
        """
        return [self.run_input(test_input) for test_input in inputs]

    def record_skips(self, counts: Dict[str, int]) -> None:
        """Account for test cases the execution scheduler decided not to run."""
        self.test_cases_skipped += sum(counts.values())
        self.time.record_skips(counts)

    def trace_batch(
        self,
        program: Program,
        inputs: List[Input],
        contract=None,
        filter_level="none",
    ) -> List[Optional[ExecutionRecord]]:
        """Load a program, schedule its inputs, and run the witnessable ones.

        With the default ``filter_level="none"`` every input is executed and
        the result list contains one record per input, as before.  With a
        ``contract`` (a :class:`~repro.model.contracts.Contract`) and a
        stricter level, the batch is first run through the functional
        emulator to collect contract traces, partitioned by the
        :class:`~repro.core.scheduler.ExecutionScheduler`, and only the
        entries that could witness a violation are simulated; skipped
        positions hold ``None``.
        """
        from repro.core.scheduler import ExecutionScheduler, FilterLevel

        level = FilterLevel(filter_level)
        if level is not FilterLevel.NONE and contract is None:
            raise ValueError("trace_batch filtering requires a contract")

        if level is FilterLevel.NONE:
            self.load_program(program)
            return [self.run_input(test_input) for test_input in inputs]

        from repro.core.testcase import TestCase
        from repro.model.emulator import Emulator

        emulator = Emulator(program, self.sandbox, specialize=self.specialize)
        test_case = TestCase(program=program)
        for test_input, model_result in zip(
            inputs, emulator.collect_traces_batch(inputs, contract)
        ):
            test_case.add(
                test_input, model_result.trace, speculation=model_result.speculation
            )
        plan = ExecutionScheduler(level).plan(test_case)
        if plan.executable:
            # A fully skipped batch never pays the simulator start-up.
            self.load_program(program)
            records = self.run_batch([entry.test_input for entry in plan.executable])
            for entry, record in zip(plan.executable, records):
                entry.record = record
        self.record_skips(plan.skip_counts())
        return [entry.record for entry in test_case.entries]

    def run_pair_with_shared_context(
        self,
        test_input_a: Input,
        test_input_b: Input,
        uarch_context: dict,
    ) -> Tuple[UarchTrace, UarchTrace]:
        """Re-run two inputs from an identical starting micro-architectural
        context (the paper's violation-validation step for Opt mode)."""
        record_a = self.run_input(test_input_a, uarch_context=uarch_context)
        record_b = self.run_input(test_input_b, uarch_context=uarch_context)
        return record_a.trace, record_b.trace

    # -- metadata ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "defense": self.defense_name,
            "mode": self.mode.value,
            "trace": self.trace_config.name,
            "prime": self.prime_strategy.value,
            "specialize": self.specialize,
            "uarch": self.uarch_config.describe(),
            "sandbox_pages": self.sandbox.pages,
        }
