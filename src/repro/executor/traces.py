"""Micro-architectural trace formats (Section 3.2 / Table 5 of the paper).

A micro-architectural trace captures what an attacker with a given observer
model can learn from one execution.  The default ("baseline") trace is a
snapshot of the final L1D-cache tags and D-TLB entries — the realistic
software attacker exploiting memory-system side channels.  Alternative
formats expose the branch-predictor state, the ordered list of memory
accesses, or the ordered list of branch predictions; the paper compares
their cost and coverage in Table 5.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.uarch.core import O3Core


@dataclass(frozen=True)
class TraceConfig:
    """Selects which micro-architectural state goes into the trace."""

    name: str
    include_l1d: bool = True
    include_dtlb: bool = True
    include_l1i: bool = False
    include_bp_state: bool = False
    include_memory_access_order: bool = False
    include_branch_prediction_order: bool = False

    def components(self) -> Tuple[str, ...]:
        enabled = []
        for attribute, label in (
            ("include_l1d", "l1d"),
            ("include_dtlb", "dtlb"),
            ("include_l1i", "l1i"),
            ("include_bp_state", "bp_state"),
            ("include_memory_access_order", "memory_access_order"),
            ("include_branch_prediction_order", "branch_prediction_order"),
        ):
            if getattr(self, attribute):
                enabled.append(label)
        return tuple(enabled)


#: The default attacker model: final L1D tags plus final D-TLB contents.
BASELINE_TRACE = TraceConfig(name="l1d+tlb")

#: L1D tags only.  Used by case studies that isolate a cache-only channel
#: (e.g. the UV2 MSHR-interference walkthrough, where the unprotected TLB
#: would otherwise leak trivially through the wide litmus addresses).
L1D_ONLY_TRACE = TraceConfig(name="l1d-only", include_dtlb=False)

#: Baseline plus the instruction cache (used to find KV1 and KV2).
L1I_EXTENDED_TRACE = TraceConfig(name="l1d+tlb+l1i", include_l1i=True)

#: Final branch-predictor state (implicit channels based on prediction).
BP_STATE_TRACE = TraceConfig(
    name="bp-state", include_l1d=False, include_dtlb=False, include_bp_state=True
)

#: Ordered list of all data-cache accesses (PC and line address).
MEMORY_ACCESS_ORDER_TRACE = TraceConfig(
    name="memory-access-order",
    include_l1d=False,
    include_dtlb=False,
    include_memory_access_order=True,
)

#: Ordered list of branch PCs and their predicted targets.
BRANCH_PREDICTION_ORDER_TRACE = TraceConfig(
    name="branch-prediction-order",
    include_l1d=False,
    include_dtlb=False,
    include_branch_prediction_order=True,
)

_TRACE_REGISTRY: Dict[str, TraceConfig] = {
    config.name: config
    for config in (
        BASELINE_TRACE,
        L1D_ONLY_TRACE,
        L1I_EXTENDED_TRACE,
        BP_STATE_TRACE,
        MEMORY_ACCESS_ORDER_TRACE,
        BRANCH_PREDICTION_ORDER_TRACE,
    )
}


def get_trace_config(name: str) -> TraceConfig:
    key = name.lower()
    if key not in _TRACE_REGISTRY:
        known = ", ".join(sorted(_TRACE_REGISTRY))
        raise KeyError(f"unknown trace format {name!r}; known formats: {known}")
    return _TRACE_REGISTRY[key]


@dataclass(frozen=True, eq=False)
class UarchTrace:
    """One micro-architectural trace: named components with hashable payloads.

    Traces are hashed and compared O(class²) times per round — detection
    groups them into dictionaries, and minimization/triage re-group after
    every candidate re-run — so the hash (and the component-name lookup
    dict) is computed once and cached.  The payload is immutable, so the
    cache can never go stale.
    """

    components: Tuple[Tuple[str, Tuple], ...]

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, UarchTrace):
            return NotImplemented
        return self.components == other.components

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(self.components)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> Dict[str, Tuple]:
        # Cached hashes must not cross process boundaries: string hashing is
        # per-process salted, so a pickled ``_hash`` would disagree with the
        # receiving process's ``hash(components)``.
        return {"components": self.components}

    def __setstate__(self, state: Dict[str, Tuple]) -> None:
        object.__setattr__(self, "components", state["components"])

    def as_dict(self) -> Dict[str, Tuple]:
        cached = self.__dict__.get("_as_dict")
        if cached is None:
            cached = dict(self.components)
            object.__setattr__(self, "_as_dict", cached)
        return cached

    def component(self, name: str) -> Tuple:
        return self.as_dict().get(name, ())

    def differing_components(self, other: "UarchTrace") -> Tuple[str, ...]:
        """Names of components whose payloads differ between two traces."""
        mine, theirs = self.as_dict(), other.as_dict()
        names = sorted(set(mine) | set(theirs))
        return tuple(name for name in names if mine.get(name) != theirs.get(name))

    def diff(self, other: "UarchTrace") -> Dict[str, Dict[str, Tuple]]:
        """Set-wise difference per component (for violation analysis)."""
        result: Dict[str, Dict[str, Tuple]] = {}
        mine, theirs = self.as_dict(), other.as_dict()
        for name in self.differing_components(other):
            first, second = set(mine.get(name, ())), set(theirs.get(name, ()))
            result[name] = {
                "only_in_first": tuple(sorted(first - second, key=repr)),
                "only_in_second": tuple(sorted(second - first, key=repr)),
            }
        return result

    def __str__(self) -> str:
        parts = []
        for name, payload in self.components:
            parts.append(f"{name}[{len(payload)}]")
        return "UarchTrace(" + ", ".join(parts) + ")"


def trace_digest(trace: UarchTrace) -> bytes:
    """Deterministic cross-process content digest of a trace.

    Unlike ``hash(trace)`` (per-process string salting), the BLAKE2b digest
    of the repr'd component tuple is stable across processes, so workers can
    ship 16 bytes per trace and the coordinator can still group entries by
    trace equality.  Cached on the trace (the cache is not pickled:
    ``__getstate__`` only carries the components).
    """
    cached = trace.__dict__.get("_digest")
    if cached is None:
        cached = hashlib.blake2b(
            repr(trace.components).encode("utf-8"), digest_size=16
        ).digest()
        object.__setattr__(trace, "_digest", cached)
    return cached


def build_trace(core: O3Core, config: TraceConfig) -> UarchTrace:
    """Snapshot the requested micro-architectural state from a finished run."""
    components = []
    if config.include_l1d:
        components.append(("l1d", core.memory.snapshot_l1d()))
    if config.include_dtlb:
        components.append(("dtlb", core.memory.snapshot_dtlb()))
    if config.include_l1i:
        components.append(("l1i", core.memory.snapshot_l1i()))
    if config.include_bp_state:
        components.append(("bp_state", (core.branch_predictor.snapshot(),)))
    if config.include_memory_access_order:
        components.append(("memory_access_order", core.memory.memory_access_order()))
    if config.include_branch_prediction_order:
        components.append(
            ("branch_prediction_order", tuple(core.branch_prediction_log))
        )
    return UarchTrace(components=tuple(components))
