"""Modeled gem5 time accounting (the substitution behind Tables 2 and 3).

The original AMuLeT measures wall-clock seconds of a real gem5 process, whose
profile is dominated by a multi-second start-up cost.  This repository's
simulator is a Python object whose construction is cheap, so the absolute
numbers cannot be compared; what can be reproduced is the *shape* of the
result: Naive mode pays the start-up cost once per test case and is
start-up-dominated, Opt mode pays it once per test program and becomes
simulation-dominated, yielding an order-of-magnitude throughput improvement.

``TimeModel`` charges calibrated per-event costs (per simulator start, per
simulated instruction, per trace extraction, ...) so the benchmark harness
can print a Table-2-style breakdown.  Real wall-clock time of this
implementation is always reported alongside the modeled time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class TimeModel:
    """Calibrated per-event costs, in (modeled) seconds.

    Defaults are calibrated against the paper's Table 2 so that a Naive
    campaign is ~96% start-up time while an Opt campaign is ~90% simulation
    time, with a roughly 13x difference in total per-program cost.
    """

    simulator_startup_seconds: float = 1.1
    simulate_per_instruction_seconds: float = 0.00015
    trace_extraction_seconds: float = 0.004
    test_generation_seconds: float = 0.3
    contract_trace_per_input_seconds: float = 0.0007
    other_per_program_seconds: float = 0.3


#: Component labels matching the rows of Table 2.
STARTUP = "gem5 startup"
SIMULATE = "gem5 simulate"
TRACE_EXTRACTION = "uTrace extraction"
TEST_GENERATION = "Test generation"
CONTRACT_TRACES = "CTrace extraction"
OTHERS = "Others"

#: Not a Table-2 row: wall-clock spent shipping tasks/results to and from
#: the intra-round simulation workers (simshard).  Charged only to the
#: wall-clock ledger so the transport cost of the parallel layer stays
#: attributable next to the modeled components.
IPC_TRANSPORT = "IPC transport"

TABLE2_COMPONENTS = (
    STARTUP,
    SIMULATE,
    TRACE_EXTRACTION,
    TEST_GENERATION,
    CONTRACT_TRACES,
    OTHERS,
)


@dataclass
class ModeledTime:
    """Accumulates modeled seconds per component, plus real wall-clock time.

    Also tracks test cases the execution scheduler *skipped* per filter
    reason: a skipped test case pays generation and contract-trace costs but
    neither simulation nor trace extraction, and campaign artifacts report
    raw (generated) next to effective (executed) throughput.
    """

    model: TimeModel = field(default_factory=TimeModel)
    modeled_seconds: Dict[str, float] = field(default_factory=dict)
    wall_clock_seconds: Dict[str, float] = field(default_factory=dict)
    #: Test cases skipped by the execution scheduler, per filter reason
    #: ("singleton", "speculation").
    skipped_test_cases: Dict[str, int] = field(default_factory=dict)

    # -- modeled charges -----------------------------------------------------
    def charge(self, component: str, seconds: float) -> None:
        self.modeled_seconds[component] = self.modeled_seconds.get(component, 0.0) + seconds

    def charge_startup(self, count: int = 1) -> None:
        self.charge(STARTUP, count * self.model.simulator_startup_seconds)

    def charge_simulation(self, instructions: int) -> None:
        self.charge(SIMULATE, instructions * self.model.simulate_per_instruction_seconds)

    def charge_trace_extraction(self, count: int = 1) -> None:
        self.charge(TRACE_EXTRACTION, count * self.model.trace_extraction_seconds)

    def charge_test_generation(self, count: int = 1) -> None:
        self.charge(TEST_GENERATION, count * self.model.test_generation_seconds)

    def charge_contract_traces(self, count: int = 1) -> None:
        self.charge(CONTRACT_TRACES, count * self.model.contract_trace_per_input_seconds)

    def charge_other(self, programs: int = 1) -> None:
        self.charge(OTHERS, programs * self.model.other_per_program_seconds)

    # -- scheduler skips ------------------------------------------------------
    def record_skips(self, counts: Dict[str, int]) -> None:
        for reason, count in counts.items():
            self.skipped_test_cases[reason] = (
                self.skipped_test_cases.get(reason, 0) + count
            )

    def total_skipped(self) -> int:
        return sum(self.skipped_test_cases.values())

    # -- wall clock ---------------------------------------------------------------
    def add_wall_clock(self, component: str, seconds: float) -> None:
        self.wall_clock_seconds[component] = (
            self.wall_clock_seconds.get(component, 0.0) + seconds
        )

    # -- reporting ------------------------------------------------------------------
    def total_modeled(self) -> float:
        return sum(self.modeled_seconds.values())

    def total_wall_clock(self) -> float:
        return sum(self.wall_clock_seconds.values())

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-component modeled seconds and percentage of the total."""
        total = self.total_modeled() or 1.0
        return {
            component: {
                "seconds": self.modeled_seconds.get(component, 0.0),
                "percent": 100.0 * self.modeled_seconds.get(component, 0.0) / total,
            }
            for component in TABLE2_COMPONENTS
        }

    def merge(self, other: "ModeledTime") -> None:
        for component, seconds in other.modeled_seconds.items():
            self.charge(component, seconds)
        for component, seconds in other.wall_clock_seconds.items():
            self.add_wall_clock(component, seconds)
        self.record_skips(other.skipped_test_cases)
