"""The executor: produces micro-architectural traces from the simulator.

This is AMuLeT's counterpart to Revizor's hardware executor.  Instead of
inferring cache state through a Prime+Probe side channel on silicon, the
executor reads the final micro-architectural state straight out of the
simulator (white-box access), after priming the caches so that both
speculative installs and speculative evictions become visible.

Two execution modes mirror the paper's Section 3.2:

* **Naive** — a fresh simulator is constructed for every test case (every
  program/input combination), paying the simulator start-up cost each time.
* **Opt** — one simulator per test program; between inputs only the
  registers and sandbox memory are overwritten and the caches re-primed,
  amortising the start-up cost and (deliberately) carrying the predictor
  state from input to input.
"""

from repro.executor.traces import (
    BASELINE_TRACE,
    BP_STATE_TRACE,
    BRANCH_PREDICTION_ORDER_TRACE,
    L1I_EXTENDED_TRACE,
    MEMORY_ACCESS_ORDER_TRACE,
    TraceConfig,
    UarchTrace,
    build_trace,
    get_trace_config,
)
from repro.executor.startup import ModeledTime, TimeModel
from repro.executor.executor import ExecutionMode, PrimeStrategy, SimulatorExecutor

__all__ = [
    "BASELINE_TRACE",
    "BP_STATE_TRACE",
    "BRANCH_PREDICTION_ORDER_TRACE",
    "L1I_EXTENDED_TRACE",
    "MEMORY_ACCESS_ORDER_TRACE",
    "TraceConfig",
    "UarchTrace",
    "build_trace",
    "get_trace_config",
    "ModeledTime",
    "TimeModel",
    "ExecutionMode",
    "PrimeStrategy",
    "SimulatorExecutor",
]
