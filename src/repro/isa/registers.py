"""Register file and architectural state definitions.

The register set mirrors the subset of x86-64 that Revizor-generated test
programs use: six general-purpose registers initialised from the test input
(``rax`` .. ``rdi``), a handful of scratch registers, and ``r14`` which always
holds the base address of the memory sandbox (and is therefore never
randomised or overwritten by generated programs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

MASK64 = (1 << 64) - 1

#: All general purpose registers known to the ISA.
GPR_NAMES = (
    "rax",
    "rbx",
    "rcx",
    "rdx",
    "rsi",
    "rdi",
    "r8",
    "r9",
    "r10",
    "r11",
    "r12",
    "r13",
    "r14",
    "r15",
)

#: Registers initialised from the test-case input (the "input registers").
INPUT_REGISTERS = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi")

#: Registers the generator may freely use as temporaries.
SCRATCH_REGISTERS = ("r8", "r9", "r10", "r11", "r12", "r13")

#: Register that always holds the sandbox base address.
SANDBOX_BASE_REGISTER = "r14"

#: Status flags modelled by the ISA.
FLAG_NAMES = ("zf", "sf", "cf", "of", "pf")


class RegisterFile:
    """A mutable map of register names to 64-bit unsigned values.

    Values are always stored masked to 64 bits, which keeps the functional
    emulator and the out-of-order simulator bit-identical without every
    caller having to remember to apply :data:`MASK64`.
    """

    __slots__ = ("_values",)

    def __init__(self, initial: Mapping[str, int] | None = None) -> None:
        self._values: Dict[str, int] = {name: 0 for name in GPR_NAMES}
        if initial:
            for name, value in initial.items():
                self.write(name, value)

    def read(self, name: str) -> int:
        """Return the 64-bit value of register ``name``."""
        return self._values[name]

    def write(self, name: str, value: int) -> None:
        """Write ``value`` (masked to 64 bits) into register ``name``."""
        if name not in self._values:
            raise KeyError(f"unknown register: {name}")
        self._values[name] = value & MASK64

    def as_dict(self) -> Dict[str, int]:
        """Return a copy of the register contents."""
        return dict(self._values)

    def copy(self) -> "RegisterFile":
        """Return an independent copy of this register file."""
        clone = RegisterFile()
        clone._values = dict(self._values)
        return clone

    def load_from(self, values: Mapping[str, int]) -> None:
        """Overwrite registers named in ``values``; others are untouched."""
        for name, value in values.items():
            self.write(name, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        interesting = {n: v for n, v in self._values.items() if v}
        return f"RegisterFile({interesting})"


@dataclass
class FlagsState:
    """The five status flags used by conditional instructions."""

    zf: bool = False
    sf: bool = False
    cf: bool = False
    of: bool = False
    pf: bool = False

    def as_dict(self) -> Dict[str, bool]:
        return {name: getattr(self, name) for name in FLAG_NAMES}

    def as_tuple(self) -> tuple:
        """The five flags in :data:`FLAG_NAMES` order, allocation-free."""
        return (self.zf, self.sf, self.cf, self.of, self.pf)

    def load_tuple(self, values: tuple) -> None:
        """Restore flags captured by :meth:`as_tuple`."""
        self.zf, self.sf, self.cf, self.of, self.pf = values

    def get(self, name: str, default: bool = False) -> bool:
        """Mapping-style read, so semantics helpers accept a FlagsState
        directly instead of forcing an ``as_dict()`` allocation per step."""
        return getattr(self, name, default)

    def update(self, new_flags: Mapping[str, bool]) -> None:
        for name, value in new_flags.items():
            if name not in FLAG_NAMES:
                raise KeyError(f"unknown flag: {name}")
            setattr(self, name, bool(value))

    def copy(self) -> "FlagsState":
        return FlagsState(**self.as_dict())


class SparseMemory:
    """Byte-addressable memory backed by a dictionary.

    Unwritten bytes read as zero.  The functional emulator uses this for
    everything outside the sandbox; the sandbox itself is a dense
    ``bytearray`` owned by :class:`ArchState` for speed.
    """

    __slots__ = ("_bytes",)

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}

    def read(self, address: int, size: int) -> int:
        value = 0
        for offset in range(size):
            value |= self._bytes.get(address + offset, 0) << (8 * offset)
        return value

    def write(self, address: int, size: int, value: int) -> None:
        for offset in range(size):
            self._bytes[address + offset] = (value >> (8 * offset)) & 0xFF

    def copy(self) -> "SparseMemory":
        clone = SparseMemory()
        clone._bytes = dict(self._bytes)
        return clone


@dataclass
class ArchState:
    """Complete architectural state: registers, flags, and memory.

    ``sandbox_base``/``sandbox_size`` delimit a dense region (the test-case
    memory sandbox); accesses inside it use the ``sandbox`` bytearray, while
    accesses outside fall back to a sparse dictionary.  Generated programs
    only ever touch the sandbox, but priming code and hand-written litmus
    tests may touch other addresses.
    """

    registers: RegisterFile = field(default_factory=RegisterFile)
    flags: FlagsState = field(default_factory=FlagsState)
    sandbox_base: int = 0x100000
    sandbox_size: int = 4096
    sandbox: bytearray = field(default_factory=lambda: bytearray(4096))
    outside: SparseMemory = field(default_factory=SparseMemory)

    def __post_init__(self) -> None:
        if len(self.sandbox) != self.sandbox_size:
            self.sandbox = bytearray(self.sandbox_size)
        self.registers.write(SANDBOX_BASE_REGISTER, self.sandbox_base)

    # -- memory helpers ----------------------------------------------------
    def in_sandbox(self, address: int, size: int = 1) -> bool:
        return (
            self.sandbox_base <= address
            and address + size <= self.sandbox_base + self.sandbox_size
        )

    def read_memory(self, address: int, size: int) -> int:
        if self.in_sandbox(address, size):
            offset = address - self.sandbox_base
            return int.from_bytes(self.sandbox[offset : offset + size], "little")
        return self.outside.read(address, size)

    def write_memory(self, address: int, size: int, value: int) -> None:
        value &= (1 << (8 * size)) - 1
        if self.in_sandbox(address, size):
            offset = address - self.sandbox_base
            self.sandbox[offset : offset + size] = value.to_bytes(size, "little")
        else:
            self.outside.write(address, size, value)

    # -- lifecycle ----------------------------------------------------------
    def copy(self) -> "ArchState":
        clone = ArchState(
            registers=self.registers.copy(),
            flags=self.flags.copy(),
            sandbox_base=self.sandbox_base,
            sandbox_size=self.sandbox_size,
            sandbox=bytearray(self.sandbox),
        )
        clone.outside = self.outside.copy()
        return clone

    def load_input(
        self,
        register_values: Mapping[str, int],
        sandbox_bytes: bytes | bytearray,
    ) -> None:
        """Initialise registers and sandbox memory from a test input."""
        self.registers.load_from(register_values)
        self.registers.write(SANDBOX_BASE_REGISTER, self.sandbox_base)
        data = bytes(sandbox_bytes)
        if len(data) > self.sandbox_size:
            raise ValueError(
                f"input memory ({len(data)} bytes) larger than sandbox "
                f"({self.sandbox_size} bytes)"
            )
        self.sandbox[: len(data)] = data
        if len(data) < self.sandbox_size:
            self.sandbox[len(data) :] = bytes(self.sandbox_size - len(data))

    def iter_sandbox_words(self, word_size: int = 8) -> Iterable[int]:
        """Yield the sandbox contents as little-endian words."""
        for offset in range(0, self.sandbox_size, word_size):
            yield int.from_bytes(self.sandbox[offset : offset + word_size], "little")
