"""Per-program specialized execution: compile the interpreter hot loop away.

Two specialization layers live here, both strictly *derived* from
:mod:`repro.isa.semantics` (the single source of architectural truth):

``compile_effect``
    Builds, for one :class:`~repro.isa.decoded.DecodedInstruction`, a closure
    equivalent to :func:`repro.isa.semantics.evaluate` with every static
    question (opcode dispatch, operand kinds, sizes, masks, the condition
    predicate) answered at compile time.  Arithmetic and flag semantics are
    *not* re-implemented: the closure calls :func:`semantics.alu_compute` and
    the :data:`semantics.CONDITION_PREDICATES` entries, pre-bound.  Both
    interpreters use these closures on their per-instruction paths (the
    functional emulator's speculative exploration, the O3 core's execute
    stage).

``compile_program`` / ``runner_for``
    Compiles a whole :class:`~repro.isa.decoded.DecodedProgram` into one
    straight-line Python function via ``exec``: per-instruction code with no
    dispatch loop, operand fields constant-folded into the source, and the
    contract observation clause (``expose_pc`` / ``expose_memory_address`` /
    ``expose_load_values`` / explore-branches) folded per artifact.  The
    functional emulator's architectural path runs through this function;
    speculative exploration stays interpreted (a ``spec`` callback).

    Generated programs are forward DAGs, so the emitted code needs no
    ``while`` loop at all: one guarded block per basic-block leader, executed
    top to bottom, with a ``t`` variable carrying the next leader index
    across (forward) branches.  Any program that is *not* a forward DAG — or
    that could hit the instruction limit — falls back to the interpreter.

Compiled artifacts are held in a bounded content-addressed LRU cache keyed
by ``(program content id, observation clause)``, so corpus entries, triage
re-runs and boosted-input batches for structurally identical programs all
hit the same artifact regardless of which ``Program`` instance they carry.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.isa.decoded import DecodedInstruction, DecodedProgram
from repro.isa.instructions import Opcode
from repro.isa.operands import Immediate, MemoryOperand, Register
from repro.isa.program import INSTRUCTION_SIZE, Program
from repro.isa.registers import MASK64, SANDBOX_BASE_REGISTER
from repro.isa.semantics import (
    CONDITION_PREDICATES,
    ExecutionEffect,
    alu_compute,
)

#: Bound on compiled artifacts kept alive (LRU).  Each artifact is one code
#: object plus its globals dict — small, but campaigns see an unbounded
#: stream of programs and the cache must not grow with it.
CACHE_SIZE = 512

#: Opcodes the specializer knows how to emit.  Anything else (a future ISA
#: extension) falls back to the interpreter instead of failing.
_ALU_BINARY = (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
               Opcode.SHL, Opcode.SHR)
_ALU_UNARY = (Opcode.INC, Opcode.DEC, Opcode.NEG, Opcode.NOT)


class SpecializationStats:
    """Process-wide compile-cache counters (surfaced in fuzzer reports)."""

    __slots__ = ("hits", "misses", "compile_seconds", "fallbacks")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.compile_seconds = 0.0
        self.fallbacks = 0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "compile_seconds": self.compile_seconds,
            "fallbacks": self.fallbacks,
        }


STATS = SpecializationStats()


def stats_snapshot() -> Dict[str, float]:
    """Current process-wide specialization counters."""
    return STATS.snapshot()


#: Sentinel cached for programs the specializer declines (backward edges).
_FALLBACK = object()

#: (content_id, clause) -> compiled runner (or _FALLBACK), LRU-ordered.
_CACHE: "OrderedDict[Tuple[str, Tuple[bool, bool, bool, bool]], object]" = OrderedDict()

#: Per-Program fast path: skips content hashing for repeat runs of the same
#: instance (every boosted input of a round, every input of a batch).
_PROGRAM_MEMO: "WeakKeyDictionary[Program, Dict[Tuple[bool, bool, bool, bool], object]]" = (
    WeakKeyDictionary()
)


def clear_cache() -> None:
    """Drop all compiled artifacts (tests)."""
    _CACHE.clear()
    _PROGRAM_MEMO.clear()


# ======================================================================
# per-instruction effect closures (evaluate() specialized per instruction)
# ======================================================================

def _width_mask(size: int) -> int:
    return (1 << (8 * size)) - 1


def _address_fn(mem: MemoryOperand) -> Callable:
    """Closure computing the effective address, operands pre-bound."""
    base = mem.base
    disp = mem.displacement
    index = mem.index
    if index is None:
        if disp == 0:
            return lambda rr: rr(base) & MASK64
        return lambda rr: (rr(base) + disp) & MASK64
    return lambda rr: (rr(base) + disp + rr(index)) & MASK64


def compile_effect(decoded: DecodedInstruction) -> Optional[Callable]:
    """An ``evaluate(instruction, ...)`` equivalent with statics folded.

    Returns ``fn(read_register, flags, read_memory) -> ExecutionEffect``
    producing field-identical effects, or None for opcodes the specializer
    does not handle (callers then use :func:`semantics.evaluate`).
    """
    instruction = decoded.instruction
    opcode = decoded.opcode
    fall = instruction.fallthrough_pc

    if opcode in (Opcode.NOP, Opcode.LFENCE, Opcode.EXIT):
        def fn_simple(rr, flags, rm):
            return ExecutionEffect(next_pc=fall)
        return fn_simple

    if opcode is Opcode.JMP:
        target = instruction.target_pc

        def fn_jmp(rr, flags, rm):
            return ExecutionEffect(branch_taken=True, next_pc=target)
        return fn_jmp

    if opcode is Opcode.JCC:
        predicate = decoded.cond_predicate
        target = instruction.target_pc

        def fn_jcc(rr, flags, rm):
            get = flags.get
            taken = bool(
                predicate(get("zf", False), get("sf", False), get("cf", False),
                          get("of", False), get("pf", False))
            )
            return ExecutionEffect(
                branch_taken=taken, next_pc=target if taken else fall
            )
        return fn_jcc

    mem = instruction.memory_operand
    size = mem.size if mem is not None else 8
    mask = _width_mask(size)
    addr_of = _address_fn(mem) if mem is not None else None

    def read_reg(name: str) -> Callable:
        if size == 8:
            return lambda rr, rm, a: rr(name)
        return lambda rr, rm, a: rr(name) & mask

    def read_imm(value: int) -> Callable:
        folded = value & mask
        return lambda rr, rm, a: folded

    def read_mem() -> Callable:
        return lambda rr, rm, a: rm(a, size) & mask

    def reader(operand) -> Callable:
        if isinstance(operand, Register):
            return read_reg(operand.name)
        if isinstance(operand, Immediate):
            return read_imm(operand.value)
        return read_mem()

    if opcode is Opcode.MOV:
        dest, src = instruction.operands
        read_src = reader(src)
        src_is_mem = isinstance(src, MemoryOperand)
        if isinstance(dest, Register):
            dest_name = dest.name

            def fn_mov_reg(rr, flags, rm):
                address = addr_of(rr) if addr_of is not None else None
                value = read_src(rr, rm, address)
                effect = ExecutionEffect(
                    register_writes={dest_name: value}, next_pc=fall
                )
                if src_is_mem:
                    effect.memory_read = (address, size)
                    effect.memory_read_value = value
                return effect
            return fn_mov_reg

        def fn_mov_mem(rr, flags, rm):
            address = addr_of(rr)
            value = read_src(rr, rm, address)
            return ExecutionEffect(
                memory_write=(address, size, value & mask), next_pc=fall
            )
        return fn_mov_mem

    if opcode is Opcode.CMOV:
        dest, src = instruction.operands
        dest_name = dest.name
        read_src = reader(src)
        src_is_mem = isinstance(src, MemoryOperand)
        predicate = decoded.cond_predicate

        def fn_cmov(rr, flags, rm):
            address = addr_of(rr) if addr_of is not None else None
            value = read_src(rr, rm, address)
            get = flags.get
            taken = predicate(get("zf", False), get("sf", False), get("cf", False),
                              get("of", False), get("pf", False))
            effect = ExecutionEffect(
                register_writes={dest_name: value if taken else rr(dest_name)},
                next_pc=fall,
            )
            if src_is_mem:
                effect.memory_read = (address, size)
                effect.memory_read_value = value
            return effect
        return fn_cmov

    if opcode is Opcode.SETCC:
        dest = instruction.operands[0]
        predicate = decoded.cond_predicate
        if isinstance(dest, Register):
            dest_name = dest.name

            def fn_setcc_reg(rr, flags, rm):
                get = flags.get
                taken = predicate(get("zf", False), get("sf", False), get("cf", False),
                                  get("of", False), get("pf", False))
                return ExecutionEffect(
                    register_writes={dest_name: 1 if taken else 0}, next_pc=fall
                )
            return fn_setcc_reg

        def fn_setcc_mem(rr, flags, rm):
            address = addr_of(rr)
            get = flags.get
            taken = predicate(get("zf", False), get("sf", False), get("cf", False),
                              get("of", False), get("pf", False))
            return ExecutionEffect(
                memory_write=(address, size, 1 if taken else 0), next_pc=fall
            )
        return fn_setcc_mem

    if opcode in (Opcode.CMP, Opcode.TEST):
        first, second = instruction.operands
        read_a = reader(first)
        read_b = reader(second)
        first_is_mem = isinstance(first, MemoryOperand)
        second_is_mem = isinstance(second, MemoryOperand)

        def fn_cmp(rr, flags, rm):
            address = addr_of(rr) if addr_of is not None else None
            a = read_a(rr, rm, address)
            b = read_b(rr, rm, address)
            effect = ExecutionEffect(next_pc=fall)
            if first_is_mem or second_is_mem:
                effect.memory_read = (address, size)
                effect.memory_read_value = a if first_is_mem else b
            _, new_flags = alu_compute(opcode, a, b, size)
            effect.flag_writes = new_flags
            return effect
        return fn_cmp

    if opcode in _ALU_UNARY or opcode in _ALU_BINARY:
        dest = instruction.operands[0]
        dest_is_mem = isinstance(dest, MemoryOperand)
        read_a = reader(dest)
        unary = opcode in _ALU_UNARY
        read_b = None if unary else reader(instruction.operands[1])
        src_is_mem = (not unary) and isinstance(instruction.operands[1], MemoryOperand)
        writes_flags = instruction.writes_flags
        preserves_carry = opcode in (Opcode.INC, Opcode.DEC)
        dest_name = None if dest_is_mem else dest.name

        def fn_alu(rr, flags, rm):
            address = addr_of(rr) if addr_of is not None else None
            a = read_a(rr, rm, address)
            b = 0 if read_b is None else read_b(rr, rm, address)
            effect = ExecutionEffect(next_pc=fall)
            if src_is_mem:
                effect.memory_read = (address, size)
                effect.memory_read_value = b
            if dest_is_mem:
                effect.memory_read = (address, size)
                effect.memory_read_value = a
            carry_in = flags.get("cf", False)
            result, new_flags = alu_compute(opcode, a, b, size, carry_in=carry_in)
            if writes_flags:
                if preserves_carry and "cf" in new_flags:
                    new_flags["cf"] = carry_in
                effect.flag_writes = new_flags
            if dest_is_mem:
                effect.memory_write = (address, size, result & mask)
            else:
                effect.register_writes = {dest_name: result & MASK64}
            return effect
        return fn_alu

    return None


def attach_effect_closures(decoded: DecodedProgram) -> None:
    """Fill ``effect_fn`` on every instruction of ``decoded`` (idempotent)."""
    for entry in decoded.entries:
        if entry.effect_fn is None:
            entry.effect_fn = compile_effect(entry)


# ======================================================================
# whole-program codegen for the functional emulator's architectural path
# ======================================================================

def _alu_full(opcode, a, b, size, carry_in=False):
    """alu_compute with the five flags unpacked positionally.

    Lets the codegen emit one tuple-assignment per ALU instruction instead
    of five dict-indexed flag stores — CPython's compile() cost scales with
    the token count of the generated source, and full-flag ALU writes are
    its most repeated pattern.
    """
    result, flags = alu_compute(opcode, a, b, size, carry_in)
    return result, flags["zf"], flags["sf"], flags["cf"], flags["of"], flags["pf"]


def _alu_keep_cf(opcode, a, b, size, carry_in):
    """Like _alu_full but without cf — INC/DEC preserve the carry flag."""
    result, flags = alu_compute(opcode, a, b, size, carry_in)
    return result, flags["zf"], flags["sf"], flags["of"], flags["pf"]


class _Emitter:
    """Accumulates generated source lines plus the globals they reference."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.env: Dict[str, object] = {
            "ALU": alu_compute,
            "ALUF": _alu_full,
            "ALUK": _alu_keep_cf,
            "M64": MASK64,
        }

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def bind_predicate(self, condition: str) -> str:
        name = f"_P_{condition}"
        self.env[name] = CONDITION_PREDICATES[condition]
        return name

    def bind_opcode(self, opcode: Opcode) -> str:
        name = f"_OP_{opcode.name}"
        self.env[name] = opcode
        return name


def _taint_union(names: Tuple[str, ...]) -> Optional[str]:
    """Union expression over register taints; None when statically empty.

    ``r14`` (the sandbox base) never carries taint by construction
    (:class:`~repro.model.taint.TaintState` pins it to the empty set), so it
    is dropped from unions at compile time.
    """
    useful = [name for name in names if name != SANDBOX_BASE_REGISTER]
    if not useful:
        return None
    return " | ".join(f"TR[{name!r}]" for name in useful)


def _address_expr(entry: DecodedInstruction) -> str:
    parts = [f"R[{entry.mem_base!r}]"]
    if entry.mem_displacement:
        parts.append(str(entry.mem_displacement))
    if entry.mem_index is not None:
        parts.append(f"R[{entry.mem_index!r}]")
    return "(" + " + ".join(parts) + ") & M64"


def _operand_expr(operand, size: int, emitter: _Emitter) -> str:
    """Expression reading one operand (mirrors semantics._read_operand)."""
    mask = _width_mask(size)
    if isinstance(operand, Register):
        if size == 8:
            return f"R[{operand.name!r}]"
        return f"(R[{operand.name!r}] & {mask:#x})"
    if isinstance(operand, Immediate):
        return repr(operand.value & mask)
    # Memory: the effective address is always in local ``a`` by the time an
    # operand is read (see _emit_instruction), and read_memory never returns
    # more than ``size`` bytes, so the _read_operand mask is a no-op.
    return f"RDM(a, {size})"


def _emit_observe(
    entry: DecodedInstruction,
    emitter: _Emitter,
    clause: Tuple[bool, bool, bool, bool],
) -> bool:
    """Emit the _observe_and_taint equivalent; returns True if the load
    value was already read into local ``v`` (reusable by the execute step)."""
    expose_pc, expose_addr, expose_vals, _explore = clause
    value_read = False
    if entry.is_cond_branch:
        emitter.emit(1, "n_cond += 1")
    if expose_pc:
        emitter.emit(1, f"OBS(('pc', {entry.pc}))")
        if entry.is_cond_branch:
            emitter.emit(1, "ft = T.flag_taint")
            emitter.emit(1, "if ft: REL(ft)")
    if entry.is_memory_access:
        emitter.emit(1, f"a = {_address_expr(entry)}")
        address_taint = _taint_union(entry.address_registers)
        if address_taint is not None:
            emitter.emit(1, f"at = {address_taint}")
            emitter.emit(1, "if at: n_taint += 1")
        if expose_addr:
            if entry.is_load:
                emitter.emit(1, "OBS(('load', a))")
            if entry.is_store:
                emitter.emit(1, "OBS(('store', a))")
            if address_taint is not None:
                emitter.emit(1, "if at: REL(at)")
        if entry.is_load and expose_vals:
            emitter.emit(1, f"v = RDM(a, {entry.mem_size})")
            value_read = True
            emitter.emit(1, "OBS(('val', v))")
            emitter.emit(1, f"mt = TMEM(a, {entry.mem_size})")
            emitter.emit(1, "if mt: REL(mt)")
            if address_taint is not None:
                emitter.emit(1, "if at: REL(at)")
        if entry.is_load:
            emitter.emit(1, f"ACC(('load', {entry.pc}, a))")
        if entry.is_store:
            emitter.emit(1, f"ACC(('store', {entry.pc}, a))")
    return value_read


def _emit_taint_write(
    entry: DecodedInstruction,
    emitter: _Emitter,
    *,
    has_memory_read: bool,
) -> None:
    """Emit the _propagate_taint equivalent for ``entry``.

    ``value_taint = registers(source_registers) [| flag_taint] [| memory]``;
    address registers are a subset of source registers whenever a memory
    operand exists, so their second union in the interpreter is a no-op.
    """
    destination = entry.destination_register
    writes_dest = destination is not None and destination != SANDBOX_BASE_REGISTER
    writes_flags = entry.writes_flags
    writes_memory = entry.is_store
    if not (writes_dest or writes_flags or writes_memory):
        return
    sources = _taint_union(entry.source_registers)
    parts = []
    if sources is not None:
        parts.append(sources)
    if entry.reads_flags:
        parts.append("T.flag_taint")
    if has_memory_read:
        parts.append(f"TMEM(a, {entry.mem_size})")
    expr = " | ".join(parts) if parts else "_E"
    # Partial flag updaters (INC/DEC, zero-count shifts) keep old flag state,
    # so their flag taint unions the previous flag taint instead of replacing
    # it — mirrored from the interpreter's _propagate_taint.
    flags_partial = writes_flags and entry.partial_flag_writer
    targets = []
    if writes_dest and expr != f"TR[{destination!r}]":
        # (the elided case is the identity write TR[d] = TR[d])
        targets.append(f"TR[{destination!r}]")
    if writes_flags and not flags_partial:
        targets.append("T.flag_taint")
    consumers = len(targets) + (1 if writes_memory else 0) + (1 if flags_partial else 0)
    if consumers == 0:
        return
    if consumers == 1:
        # Single consumer: assign the expression directly, no temp.
        if flags_partial:
            emitter.emit(1, f"T.flag_taint = T.flag_taint | ({expr})")
        elif targets:
            emitter.emit(1, f"{targets[0]} = {expr}")
        else:
            emitter.emit(1, f"TSETM(a, {entry.mem_size}, {expr})")
        return
    emitter.emit(1, f"vt = {expr}")
    for target in targets:
        emitter.emit(1, f"{target} = vt")
    if flags_partial:
        emitter.emit(1, "T.flag_taint = T.flag_taint | vt")
    if writes_memory:
        emitter.emit(1, f"TSETM(a, {entry.mem_size}, vt)")


def _emit_instruction(
    entry: DecodedInstruction,
    emitter: _Emitter,
    clause: Tuple[bool, bool, bool, bool],
    index_of_pc: Dict[int, int],
    index: int,
) -> None:
    """Emit observe + (speculate) + execute + taint + bookkeeping for one
    instruction.  The emitted code is the straight-line unrolling of one
    iteration of ``Emulator._run_architectural``."""
    opcode = entry.opcode
    explore = clause[3]
    value_in_v = _emit_observe(entry, emitter, clause)

    if entry.is_cond_branch:
        predicate = emitter.bind_predicate(entry.condition)
        emitter.emit(1, f"tk = {predicate}(F.zf, F.sf, F.cf, F.of, F.pf)")
        if explore:
            emitter.emit(
                1, f"spec({entry.fallthrough_pc} if tk else {entry.target_pc})"
            )

    size = entry.mem_size if entry.memory_operand is not None else 8
    mask = _width_mask(size)

    if opcode in (Opcode.NOP, Opcode.LFENCE):
        pass

    elif opcode is Opcode.JMP:
        pass  # transition handled by the group epilogue

    elif opcode is Opcode.JCC:
        pass  # taken already computed; transition in the group epilogue

    elif opcode is Opcode.MOV:
        dest, src = entry.instruction.operands
        src_expr = "v" if (value_in_v and isinstance(src, MemoryOperand)) else (
            _operand_expr(src, size, emitter)
        )
        if isinstance(dest, Register):
            emitter.emit(1, f"R[{dest.name!r}] = {src_expr}")
        else:
            if isinstance(src, Immediate):
                # Already masked to the operation width at fold time.
                emitter.emit(1, f"WRM(a, {size}, {src_expr})")
            else:
                emitter.emit(1, f"WRM(a, {size}, {src_expr} & {mask:#x})"
                             if size < 8 else f"WRM(a, {size}, {src_expr})")
        _emit_taint_write(entry, emitter, has_memory_read=isinstance(src, MemoryOperand))

    elif opcode is Opcode.CMOV:
        dest, src = entry.instruction.operands
        predicate = emitter.bind_predicate(entry.condition)
        src_expr = "v" if (value_in_v and isinstance(src, MemoryOperand)) else (
            _operand_expr(src, size, emitter)
        )
        emitter.emit(1, f"if {predicate}(F.zf, F.sf, F.cf, F.of, F.pf):")
        emitter.emit(2, f"R[{dest.name!r}] = {src_expr}")
        _emit_taint_write(entry, emitter, has_memory_read=isinstance(src, MemoryOperand))

    elif opcode is Opcode.SETCC:
        dest = entry.instruction.operands[0]
        predicate = emitter.bind_predicate(entry.condition)
        emitter.emit(
            1, f"sv = 1 if {predicate}(F.zf, F.sf, F.cf, F.of, F.pf) else 0"
        )
        if isinstance(dest, Register):
            emitter.emit(1, f"R[{dest.name!r}] = sv")
        else:
            emitter.emit(1, f"WRM(a, {size}, sv)")
        _emit_taint_write(entry, emitter, has_memory_read=False)

    elif opcode in (Opcode.CMP, Opcode.TEST):
        first, second = entry.instruction.operands
        first_is_mem = isinstance(first, MemoryOperand)
        a_expr = "v" if (value_in_v and first_is_mem) else _operand_expr(first, size, emitter)
        b_expr = "v" if (value_in_v and not first_is_mem and isinstance(second, MemoryOperand)) else (
            _operand_expr(second, size, emitter)
        )
        op_name = emitter.bind_opcode(opcode)
        emitter.emit(
            1,
            f"r, F.zf, F.sf, F.cf, F.of, F.pf = "
            f"ALUF({op_name}, {a_expr}, {b_expr}, {size})",
        )
        _emit_taint_write(
            entry, emitter,
            has_memory_read=first_is_mem or isinstance(second, MemoryOperand),
        )

    elif opcode in _ALU_UNARY or opcode in _ALU_BINARY:
        dest = entry.instruction.operands[0]
        dest_is_mem = isinstance(dest, MemoryOperand)
        unary = opcode in _ALU_UNARY
        src = None if unary else entry.instruction.operands[1]
        src_is_mem = isinstance(src, MemoryOperand)
        a_expr = "v" if (value_in_v and dest_is_mem) else _operand_expr(dest, size, emitter)
        if unary:
            b_expr = "0"
        elif value_in_v and src_is_mem:
            b_expr = "v"
        else:
            b_expr = _operand_expr(src, size, emitter)
        op_name = emitter.bind_opcode(opcode)
        if not entry.writes_flags:
            emitter.emit(1, f"r, nf = ALU({op_name}, {a_expr}, {b_expr}, {size}, F.cf)")
        elif opcode in (Opcode.INC, Opcode.DEC):
            # INC/DEC preserve the carry flag.
            emitter.emit(
                1,
                f"r, F.zf, F.sf, F.of, F.pf = "
                f"ALUK({op_name}, {a_expr}, {b_expr}, {size}, F.cf)",
            )
        elif opcode in (Opcode.SHL, Opcode.SHR):
            # Zero shift amounts leave every flag untouched.
            emitter.emit(1, f"r, nf = ALU({op_name}, {a_expr}, {b_expr}, {size}, F.cf)")
            emitter.emit(1, "if nf:")
            emitter.emit(
                2,
                "F.zf, F.sf, F.cf, F.of, F.pf = "
                "nf['zf'], nf['sf'], nf['cf'], nf['of'], nf['pf']",
            )
        else:
            emitter.emit(
                1,
                f"r, F.zf, F.sf, F.cf, F.of, F.pf = "
                f"ALUF({op_name}, {a_expr}, {b_expr}, {size}, F.cf)",
            )
        if dest_is_mem:
            emitter.emit(1, f"WRM(a, {size}, r)")
        else:
            emitter.emit(1, f"R[{dest.name!r}] = r")
        _emit_taint_write(entry, emitter, has_memory_read=src_is_mem or dest_is_mem)

    else:  # pragma: no cover - guarded by _supported() at compile entry
        raise AssertionError(f"unsupported opcode reached emission: {opcode}")

    emitter.emit(1, f"EPC({entry.pc})")


def _supported(entries: Tuple[DecodedInstruction, ...]) -> bool:
    """Forward-DAG + known-opcode check gating compilation."""
    known = set(_ALU_BINARY) | set(_ALU_UNARY) | {
        Opcode.MOV, Opcode.CMOV, Opcode.SETCC, Opcode.CMP, Opcode.TEST,
        Opcode.JMP, Opcode.JCC, Opcode.NOP, Opcode.LFENCE, Opcode.EXIT,
    }
    for entry in entries:
        if entry.opcode not in known:
            return False
        if entry.is_branch:
            if entry.target_pc is None or entry.target_pc <= entry.pc:
                return False
    return True


def compile_program(
    decoded: DecodedProgram,
    clause: Tuple[bool, bool, bool, bool],
    name: str = "program",
) -> Optional[Callable]:
    """Compile the architectural path of ``decoded`` under ``clause``.

    ``clause`` is ``(expose_pc, expose_memory_address, expose_load_values,
    explore_branches)``.  Returns the runner
    ``run(state, taint, observations, executed_pcs, accesses, counters,
    spec)`` or None when the program is not specializable.
    """
    entries = decoded.entries
    if not _supported(entries):
        return None

    code_base = decoded.code_base
    index_of_pc = {entry.pc: i for i, entry in enumerate(entries)}

    # Basic-block leaders: entry point, branch targets, post-branch/exit.
    leaders = {0}
    for i, entry in enumerate(entries):
        if entry.is_branch or entry.is_exit:
            if i + 1 < len(entries):
                leaders.add(i + 1)
            if entry.is_branch:
                leaders.add(index_of_pc[entry.target_pc])
    ordered_leaders = sorted(leaders)
    next_leader: Dict[int, int] = {}
    for pos, leader in enumerate(ordered_leaders):
        next_leader[leader] = (
            ordered_leaders[pos + 1] if pos + 1 < len(ordered_leaders) else len(entries)
        )

    emitter = _Emitter()
    emitter.emit(0, "def _specialized_run(state, taint, observations, executed_pcs, accesses, counters, spec):")
    emitter.emit(1, "R = state.registers._values")
    emitter.emit(1, "F = state.flags")
    emitter.emit(1, "RDM = state.read_memory")
    emitter.emit(1, "WRM = state.write_memory")
    emitter.emit(1, "T = taint")
    emitter.emit(1, "TR = taint.register_taints")
    emitter.emit(1, "TMEM = taint.memory")
    emitter.emit(1, "TSETM = taint.set_memory")
    emitter.emit(1, "REL = taint.relevant.update")
    emitter.emit(1, "OBS = observations.append")
    emitter.emit(1, "EPC = executed_pcs.append")
    emitter.emit(1, "ACC = accesses.append")
    # EPC appends exactly once per executed instruction (EXIT stops before
    # its emission), so the architectural count is derived rather than kept
    # as a per-instruction increment in the generated code.
    emitter.emit(1, "_n0 = len(executed_pcs)")
    emitter.emit(1, "n_cond = 0")
    emitter.emit(1, "n_taint = 0")
    emitter.emit(1, "t = 0")

    body_lines = emitter.lines
    for leader in ordered_leaders:
        group_end = next_leader[leader]
        group = _Emitter()
        group.env = emitter.env  # shared bindings
        terminated = False
        for i in range(leader, group_end):
            entry = entries[i]
            if entry.is_exit:
                # The interpreter stops *at* EXIT: no observation, no count.
                terminated = True
                break
            _emit_instruction(entry, group, clause, index_of_pc, i)
            if entry.is_jmp:
                group.emit(1, f"t = {index_of_pc[entry.target_pc]}")
                terminated = True
                break
            if entry.is_cond_branch:
                group.emit(
                    1,
                    f"t = {index_of_pc[entry.target_pc]} if tk else {i + 1}",
                )
                terminated = True
                break
        if not terminated:
            group.emit(1, f"t = {group_end}")
        if group.lines:
            body_lines.append(f"    if t == {leader}:")
            body_lines.extend("    " + line for line in group.lines)

    emitter.emit(1, "counters['architectural'] += len(executed_pcs) - _n0")
    emitter.emit(1, "counters['cond_branches'] += n_cond")
    emitter.emit(1, "counters['tainted_accesses'] += n_taint")

    source = "\n".join(emitter.lines)
    namespace: Dict[str, object] = dict(emitter.env)
    namespace["_E"] = frozenset()
    code = compile(source, f"<specialized:{name}>", "exec")
    exec(code, namespace)
    runner = namespace["_specialized_run"]
    runner._source = source  # debugging aid
    return runner


# ======================================================================
# the content-addressed artifact cache
# ======================================================================

def observation_clause_key(contract) -> Tuple[bool, bool, bool, bool]:
    """The contract facets folded into a compiled artifact."""
    return (
        contract.expose_pc,
        contract.expose_memory_address,
        contract.expose_load_values,
        bool(contract.speculate_branches and contract.max_nesting > 0),
    )


def runner_for(
    program: Program,
    decoded: DecodedProgram,
    contract,
    instruction_limit: int,
) -> Optional[Callable]:
    """The compiled runner for ``(program, contract clause)``, cached.

    Returns None when the program falls back to the interpreter (backward
    edges, unknown opcodes, or more instructions than ``instruction_limit``
    — a compiled forward DAG executes each instruction at most once, so the
    limit check is decidable at compile time).
    """
    if len(decoded.entries) >= instruction_limit:
        STATS.fallbacks += 1
        return None

    clause = observation_clause_key(contract)
    memo = _PROGRAM_MEMO.get(program)
    if memo is not None:
        cached = memo.get(clause)
        if cached is not None:
            STATS.hits += 1
            return None if cached is _FALLBACK else cached
    else:
        memo = {}
        _PROGRAM_MEMO[program] = memo

    key = (program.content_id(), clause)
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        memo[clause] = cached
        STATS.hits += 1
        return None if cached is _FALLBACK else cached

    STATS.misses += 1
    started = time.perf_counter()
    runner = compile_program(decoded, clause, name=program.name)
    STATS.compile_seconds += time.perf_counter() - started
    if runner is None:
        STATS.fallbacks += 1
        cached = _FALLBACK
    else:
        cached = runner
    _CACHE[key] = cached
    if len(_CACHE) > CACHE_SIZE:
        _CACHE.popitem(last=False)
    memo[clause] = cached
    return None if cached is _FALLBACK else cached
