"""Instruction definitions for the reproduction ISA."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional, Tuple

from repro.isa.operands import (
    Immediate,
    Label,
    MemoryOperand,
    Operand,
    Register,
    operand_from_dict,
    operand_to_dict,
)


class Opcode(Enum):
    """Operations supported by the ISA.

    The set is intentionally small but covers everything the paper's test
    programs exercise: data movement, ALU operations that set flags,
    conditional moves (data-dependent loads), conditional and unconditional
    branches, and an explicit ``EXIT`` marker that plays the role of gem5's
    ``m5exit`` pseudo-instruction (end of the test case).
    """

    MOV = auto()
    ADD = auto()
    SUB = auto()
    AND = auto()
    OR = auto()
    XOR = auto()
    CMP = auto()
    TEST = auto()
    INC = auto()
    DEC = auto()
    NEG = auto()
    NOT = auto()
    SHL = auto()
    SHR = auto()
    CMOV = auto()
    SETCC = auto()
    JMP = auto()
    JCC = auto()
    NOP = auto()
    LFENCE = auto()
    EXIT = auto()


class InstructionClass(Enum):
    """Coarse classification used by the generator and the simulator."""

    ALU = auto()
    LOAD = auto()
    STORE = auto()
    RMW = auto()  # read-modify-write on memory (both a load and a store)
    BRANCH = auto()
    FENCE = auto()
    NOP = auto()
    EXIT = auto()


#: Condition codes usable with CMOV / Jcc / SETcc, mirroring x86 mnemonics.
CONDITION_CODES = (
    "z",
    "nz",
    "s",
    "ns",
    "o",
    "no",
    "l",
    "ge",
    "le",
    "g",
    "b",
    "nb",
    "be",
    "a",
    "p",
    "np",
)

#: Opcodes that write their first (destination) operand.
_WRITES_DEST = {
    Opcode.MOV,
    Opcode.ADD,
    Opcode.SUB,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.INC,
    Opcode.DEC,
    Opcode.NEG,
    Opcode.NOT,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.CMOV,
    Opcode.SETCC,
}

#: Opcodes that update the flags register.
_WRITES_FLAGS = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.CMP,
    Opcode.TEST,
    Opcode.INC,
    Opcode.DEC,
    Opcode.NEG,
    Opcode.SHL,
    Opcode.SHR,
}

#: Opcodes that read the flags register.
_READS_FLAGS = {Opcode.CMOV, Opcode.SETCC, Opcode.JCC}

_SEQUENCE = itertools.count()


@dataclass
class Instruction:
    """A single instruction.

    ``operands`` follows Intel order: destination first.  ``condition`` is
    only meaningful for :data:`Opcode.CMOV`, :data:`Opcode.SETCC` and
    :data:`Opcode.JCC`.  The program assembler fills in ``pc`` (byte address)
    and, for branches, ``target_pc``/``fallthrough_pc``.
    """

    opcode: Opcode
    operands: Tuple[Operand, ...] = ()
    condition: Optional[str] = None
    pc: Optional[int] = None
    target_pc: Optional[int] = None
    fallthrough_pc: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_SEQUENCE))

    def __post_init__(self) -> None:
        if self.opcode in (Opcode.CMOV, Opcode.SETCC, Opcode.JCC):
            if self.condition not in CONDITION_CODES:
                raise ValueError(
                    f"{self.opcode.name} requires a condition code, "
                    f"got {self.condition!r}"
                )

    # -- structural queries --------------------------------------------------
    @property
    def memory_operand(self) -> Optional[MemoryOperand]:
        """Return the memory operand, if any (at most one is supported)."""
        for operand in self.operands:
            if isinstance(operand, MemoryOperand):
                return operand
        return None

    @property
    def is_branch(self) -> bool:
        return self.opcode in (Opcode.JMP, Opcode.JCC)

    @property
    def is_cond_branch(self) -> bool:
        return self.opcode is Opcode.JCC

    @property
    def is_exit(self) -> bool:
        return self.opcode is Opcode.EXIT

    @property
    def is_load(self) -> bool:
        """True if the instruction reads memory."""
        mem = self.memory_operand
        if mem is None:
            return False
        if self.opcode is Opcode.MOV:
            # MOV reads memory only when the memory operand is the source.
            return isinstance(self.operands[1], MemoryOperand)
        if self.opcode is Opcode.CMOV:
            return isinstance(self.operands[1], MemoryOperand)
        if self.opcode in (Opcode.CMP, Opcode.TEST):
            return True
        # ALU op with a memory destination is a read-modify-write.
        if self.opcode in (
            Opcode.ADD,
            Opcode.SUB,
            Opcode.AND,
            Opcode.OR,
            Opcode.XOR,
            Opcode.INC,
            Opcode.DEC,
            Opcode.NEG,
            Opcode.NOT,
        ):
            return True
        return False

    @property
    def is_store(self) -> bool:
        """True if the instruction writes memory."""
        mem = self.memory_operand
        if mem is None:
            return False
        if self.opcode in (Opcode.CMP, Opcode.TEST):
            return False
        if self.opcode in (Opcode.MOV, Opcode.SETCC):
            return isinstance(self.operands[0], MemoryOperand)
        if self.opcode is Opcode.CMOV:
            return False
        if self.opcode in (
            Opcode.ADD,
            Opcode.SUB,
            Opcode.AND,
            Opcode.OR,
            Opcode.XOR,
            Opcode.INC,
            Opcode.DEC,
            Opcode.NEG,
            Opcode.NOT,
        ):
            return isinstance(self.operands[0], MemoryOperand)
        return False

    @property
    def is_memory_access(self) -> bool:
        return self.is_load or self.is_store

    @property
    def instruction_class(self) -> InstructionClass:
        if self.opcode is Opcode.EXIT:
            return InstructionClass.EXIT
        if self.opcode is Opcode.NOP:
            return InstructionClass.NOP
        if self.opcode is Opcode.LFENCE:
            return InstructionClass.FENCE
        if self.is_branch:
            return InstructionClass.BRANCH
        if self.is_load and self.is_store:
            return InstructionClass.RMW
        if self.is_load:
            return InstructionClass.LOAD
        if self.is_store:
            return InstructionClass.STORE
        return InstructionClass.ALU

    @property
    def writes_dest_register(self) -> bool:
        return (
            self.opcode in _WRITES_DEST
            and bool(self.operands)
            and isinstance(self.operands[0], Register)
        )

    @property
    def writes_flags(self) -> bool:
        return self.opcode in _WRITES_FLAGS

    @property
    def reads_flags(self) -> bool:
        return self.opcode in _READS_FLAGS

    def source_registers(self) -> Tuple[str, ...]:
        """Names of registers whose values the instruction reads."""
        sources = []
        for position, operand in enumerate(self.operands):
            if isinstance(operand, Register):
                is_pure_dest = (
                    position == 0
                    and self.opcode in (Opcode.MOV, Opcode.CMOV, Opcode.SETCC)
                )
                # CMOV keeps the old destination on a false condition, so the
                # destination is also a source.
                if self.opcode is Opcode.CMOV and position == 0:
                    is_pure_dest = False
                if not is_pure_dest:
                    sources.append(operand.name)
            elif isinstance(operand, MemoryOperand):
                sources.append(operand.base)
                if operand.index is not None:
                    sources.append(operand.index)
        return tuple(dict.fromkeys(sources))

    def destination_register(self) -> Optional[str]:
        if self.writes_dest_register:
            return self.operands[0].name  # type: ignore[union-attr]
        return None

    def address_registers(self) -> Tuple[str, ...]:
        """Registers that feed the effective-address computation."""
        mem = self.memory_operand
        if mem is None:
            return ()
        registers = [mem.base]
        if mem.index is not None:
            registers.append(mem.index)
        return tuple(dict.fromkeys(registers))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON form (pc/uid are rebuild artifacts, not serialised)."""
        payload: dict = {
            "opcode": self.opcode.name,
            "operands": [operand_to_dict(operand) for operand in self.operands],
        }
        if self.condition is not None:
            payload["condition"] = self.condition
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "Instruction":
        return Instruction(
            Opcode[payload["opcode"]],
            tuple(operand_from_dict(operand) for operand in payload["operands"]),
            condition=payload.get("condition"),
        )

    # -- formatting ----------------------------------------------------------
    def mnemonic(self) -> str:
        if self.opcode is Opcode.CMOV:
            return f"cmov{self.condition}"
        if self.opcode is Opcode.SETCC:
            return f"set{self.condition}"
        if self.opcode is Opcode.JCC:
            return f"j{self.condition}"
        return self.opcode.name.lower()

    def __str__(self) -> str:
        operand_text = ", ".join(str(op) for op in self.operands)
        text = self.mnemonic().upper()
        if operand_text:
            text = f"{text} {operand_text}"
        return text


# -- convenience constructors ------------------------------------------------

def load(dest: str, index: str | None, displacement: int = 0, size: int = 8) -> Instruction:
    """``MOV dest, [r14 + index + displacement]``"""
    return Instruction(
        Opcode.MOV,
        (Register(dest), MemoryOperand(index=index, displacement=displacement, size=size)),
    )


def store(index: str | None, source: str, displacement: int = 0, size: int = 8) -> Instruction:
    """``MOV [r14 + index + displacement], source``"""
    return Instruction(
        Opcode.MOV,
        (MemoryOperand(index=index, displacement=displacement, size=size), Register(source)),
    )


def cmov(condition: str, dest: str, source: Operand) -> Instruction:
    return Instruction(Opcode.CMOV, (Register(dest), source), condition=condition)


def cond_branch(condition: str, target: str) -> Instruction:
    return Instruction(Opcode.JCC, (Label(target),), condition=condition)


def jump(target: str) -> Instruction:
    return Instruction(Opcode.JMP, (Label(target),))


def nop() -> Instruction:
    return Instruction(Opcode.NOP)


def exit_instruction() -> Instruction:
    return Instruction(Opcode.EXIT)
