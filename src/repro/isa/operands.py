"""Operand types for the reproduction ISA.

Operands are small frozen dataclasses so they can be shared between
instructions, hashed, and compared structurally in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.registers import GPR_NAMES, SANDBOX_BASE_REGISTER


@dataclass(frozen=True)
class Register:
    """A general-purpose register operand."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in GPR_NAMES:
            raise ValueError(f"unknown register: {self.name}")

    def __str__(self) -> str:
        return self.name.upper()


@dataclass(frozen=True)
class Immediate:
    """An immediate (constant) operand."""

    value: int

    def __str__(self) -> str:
        if 0 <= self.value <= 9:
            return str(self.value)
        return hex(self.value)


@dataclass(frozen=True)
class MemoryOperand:
    """A memory operand of the form ``[base + index + displacement]``.

    Generated programs always use the sandbox base register as ``base`` so
    that every access lands inside the memory sandbox once the index has
    been masked.  ``size`` is the access width in bytes (1, 2, 4 or 8).
    """

    base: str = SANDBOX_BASE_REGISTER
    index: str | None = None
    displacement: int = 0
    size: int = 8

    def __post_init__(self) -> None:
        if self.base not in GPR_NAMES:
            raise ValueError(f"unknown base register: {self.base}")
        if self.index is not None and self.index not in GPR_NAMES:
            raise ValueError(f"unknown index register: {self.index}")
        if self.size not in (1, 2, 4, 8):
            raise ValueError(f"unsupported access size: {self.size}")

    def __str__(self) -> str:
        parts = [self.base.upper()]
        if self.index is not None:
            parts.append(self.index.upper())
        if self.displacement:
            parts.append(hex(self.displacement))
        ptr = {1: "byte", 2: "word", 4: "dword", 8: "qword"}[self.size]
        return f"{ptr} ptr [{' + '.join(parts)}]"


@dataclass(frozen=True)
class Label:
    """A control-flow target referring to a basic block by name."""

    name: str

    def __str__(self) -> str:
        return f".{self.name}"


Operand = Register | Immediate | MemoryOperand | Label


# -- serialization -------------------------------------------------------------
# Operands must round-trip through JSON for the persistent fuzzing corpus
# (:mod:`repro.feedback.corpus`): the dict form is canonical, so two
# structurally equal operands always serialise to the same payload.

def operand_to_dict(operand: Operand) -> dict:
    """JSON-friendly representation of one operand."""
    if isinstance(operand, Register):
        return {"kind": "reg", "name": operand.name}
    if isinstance(operand, Immediate):
        return {"kind": "imm", "value": operand.value}
    if isinstance(operand, MemoryOperand):
        return {
            "kind": "mem",
            "base": operand.base,
            "index": operand.index,
            "displacement": operand.displacement,
            "size": operand.size,
        }
    if isinstance(operand, Label):
        return {"kind": "label", "name": operand.name}
    raise TypeError(f"unsupported operand type: {type(operand).__name__}")


def operand_from_dict(payload: dict) -> Operand:
    """Rebuild an operand serialised by :func:`operand_to_dict`."""
    kind = payload["kind"]
    if kind == "reg":
        return Register(payload["name"])
    if kind == "imm":
        return Immediate(payload["value"])
    if kind == "mem":
        return MemoryOperand(
            base=payload["base"],
            index=payload["index"],
            displacement=payload["displacement"],
            size=payload["size"],
        )
    if kind == "label":
        return Label(payload["name"])
    raise ValueError(f"unsupported operand kind: {kind!r}")
