"""Shared execution semantics for the reproduction ISA.

Both the functional emulator (the leakage model) and the out-of-order
simulator (the executor substrate) execute instructions through the helpers
in this module.  Keeping the semantics in exactly one place guarantees that
the two sides can never disagree architecturally; any relational-test
difference therefore has to originate in the micro-architecture, which is
the property model-based relational testing relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.operands import Immediate, MemoryOperand, Register
from repro.isa.registers import ArchState, MASK64

ReadRegister = Callable[[str], int]
ReadMemory = Callable[[int, int], int]

#: ALU opcodes that leave the carry flag untouched (x86 INC/DEC behaviour).
_PRESERVES_CARRY = (Opcode.INC, Opcode.DEC)


def _width_mask(size: int) -> int:
    return (1 << (8 * size)) - 1


def _sign_bit(value: int, size: int) -> int:
    return (value >> (8 * size - 1)) & 1


def _parity_even(value: int) -> bool:
    return (value & 0xFF).bit_count() % 2 == 0


#: One predicate per condition code, taking the five flags positionally.
#: :class:`~repro.isa.decoded.DecodedInstruction` binds the predicate once at
#: decode time so the hot path never rebuilds a lookup table per evaluation.
CONDITION_PREDICATES: Dict[str, Callable[[bool, bool, bool, bool, bool], bool]] = {
    "z": lambda zf, sf, cf, of, pf: zf,
    "nz": lambda zf, sf, cf, of, pf: not zf,
    "s": lambda zf, sf, cf, of, pf: sf,
    "ns": lambda zf, sf, cf, of, pf: not sf,
    "o": lambda zf, sf, cf, of, pf: of,
    "no": lambda zf, sf, cf, of, pf: not of,
    "l": lambda zf, sf, cf, of, pf: sf != of,
    "ge": lambda zf, sf, cf, of, pf: sf == of,
    "le": lambda zf, sf, cf, of, pf: zf or (sf != of),
    "g": lambda zf, sf, cf, of, pf: (not zf) and (sf == of),
    "b": lambda zf, sf, cf, of, pf: cf,
    "nb": lambda zf, sf, cf, of, pf: not cf,
    "be": lambda zf, sf, cf, of, pf: cf or zf,
    "a": lambda zf, sf, cf, of, pf: (not cf) and (not zf),
    "p": lambda zf, sf, cf, of, pf: pf,
    "np": lambda zf, sf, cf, of, pf: not pf,
}


def condition_predicate(condition: str) -> Callable[[bool, bool, bool, bool, bool], bool]:
    """Resolve a condition code to its flag predicate once."""
    try:
        return CONDITION_PREDICATES[condition]
    except KeyError:
        raise ValueError(f"unknown condition code: {condition}") from None


def condition_holds(condition: str, flags: Dict[str, bool]) -> bool:
    """Evaluate an x86-style condition code against a flags dictionary."""
    predicate = condition_predicate(condition)
    return bool(
        predicate(
            flags.get("zf", False),
            flags.get("sf", False),
            flags.get("cf", False),
            flags.get("of", False),
            flags.get("pf", False),
        )
    )


def alu_compute(
    opcode: Opcode,
    a: int,
    b: int,
    size: int = 8,
    carry_in: bool = False,
) -> Tuple[int, Dict[str, bool]]:
    """Compute the result and flags of an ALU operation.

    ``a`` is the destination/first operand and ``b`` the source/second
    operand, both already masked to the operation width.  ``carry_in`` is the
    current carry flag, needed only because INC/DEC preserve it.
    """
    mask = _width_mask(size)
    a &= mask
    b &= mask
    carry = carry_in
    overflow = False

    if opcode is Opcode.ADD:
        raw = a + b
        result = raw & mask
        carry = raw > mask
        overflow = _sign_bit(a, size) == _sign_bit(b, size) and _sign_bit(
            result, size
        ) != _sign_bit(a, size)
    elif opcode in (Opcode.SUB, Opcode.CMP):
        raw = a - b
        result = raw & mask
        carry = a < b
        overflow = _sign_bit(a, size) != _sign_bit(b, size) and _sign_bit(
            result, size
        ) != _sign_bit(a, size)
    elif opcode in (Opcode.AND, Opcode.TEST):
        result = a & b
        carry = False
    elif opcode is Opcode.OR:
        result = a | b
        carry = False
    elif opcode is Opcode.XOR:
        result = a ^ b
        carry = False
    elif opcode is Opcode.INC:
        result = (a + 1) & mask
        overflow = result == (1 << (8 * size - 1))
    elif opcode is Opcode.DEC:
        result = (a - 1) & mask
        overflow = a == (1 << (8 * size - 1))
    elif opcode is Opcode.NEG:
        result = (-a) & mask
        carry = a != 0
        overflow = a == (1 << (8 * size - 1))
    elif opcode is Opcode.NOT:
        result = (~a) & mask
        # NOT does not modify flags on x86; callers check writes_flags.
        return result, {}
    elif opcode is Opcode.SHL:
        amount = b & 0x3F
        if amount == 0:
            return a, {}
        shifted = a << amount
        result = shifted & mask
        carry = bool((shifted >> (8 * size)) & 1)
    elif opcode is Opcode.SHR:
        amount = b & 0x3F
        if amount == 0:
            return a, {}
        carry = bool((a >> (amount - 1)) & 1) if amount <= 8 * size else False
        result = (a >> amount) & mask
    else:
        raise ValueError(f"not an ALU opcode: {opcode}")

    flags = {
        "zf": result == 0,
        "sf": bool(_sign_bit(result, size)),
        "cf": bool(carry),
        "of": bool(overflow),
        "pf": _parity_even(result),
    }
    return result, flags


def compute_effective_address(
    memory_operand: MemoryOperand, read_register: ReadRegister
) -> int:
    """Resolve a memory operand's effective address."""
    address = read_register(memory_operand.base) + memory_operand.displacement
    if memory_operand.index is not None:
        address += read_register(memory_operand.index)
    return address & MASK64


@dataclass
class ExecutionEffect:
    """The architectural effect of executing one instruction.

    Produced by :func:`evaluate`.  The caller decides how to apply it: the
    functional emulator applies it directly to an :class:`ArchState`, while
    the out-of-order core records it in the corresponding ROB entry and
    defers the memory write until commit.
    """

    register_writes: Dict[str, int] = field(default_factory=dict)
    flag_writes: Dict[str, bool] = field(default_factory=dict)
    memory_read: Optional[Tuple[int, int]] = None  # (address, size)
    memory_read_value: Optional[int] = None
    memory_write: Optional[Tuple[int, int, int]] = None  # (address, size, value)
    branch_taken: Optional[bool] = None
    next_pc: Optional[int] = None


def _read_operand(
    operand,
    size: int,
    read_register: ReadRegister,
    read_memory: ReadMemory,
    address: Optional[int],
) -> int:
    mask = _width_mask(size)
    if isinstance(operand, Register):
        return read_register(operand.name) & mask
    if isinstance(operand, Immediate):
        return operand.value & mask
    if isinstance(operand, MemoryOperand):
        assert address is not None
        return read_memory(address, operand.size) & mask
    raise TypeError(f"cannot read operand {operand!r}")


def evaluate(
    instruction: Instruction,
    read_register: ReadRegister,
    flags: Dict[str, bool],
    read_memory: ReadMemory,
) -> ExecutionEffect:
    """Compute the architectural effect of ``instruction``.

    The caller provides the view of registers, flags and memory the
    instruction should execute against; this is what lets the out-of-order
    core route memory reads through its load/store queue (forwarding,
    speculative bypass) while still using the same semantics.  ``flags`` is
    anything with a mapping-style ``get`` — a plain dict or a
    :class:`~repro.isa.registers.FlagsState` (which avoids the per-step
    ``as_dict`` allocation on the hot path).
    """
    effect = ExecutionEffect()
    opcode = instruction.opcode

    if opcode in (Opcode.NOP, Opcode.LFENCE, Opcode.EXIT):
        effect.next_pc = instruction.fallthrough_pc
        return effect

    if opcode is Opcode.JMP:
        effect.branch_taken = True
        effect.next_pc = instruction.target_pc
        return effect

    if opcode is Opcode.JCC:
        taken = condition_holds(instruction.condition, flags)
        effect.branch_taken = taken
        effect.next_pc = instruction.target_pc if taken else instruction.fallthrough_pc
        return effect

    memory_operand = instruction.memory_operand
    address: Optional[int] = None
    if memory_operand is not None:
        address = compute_effective_address(memory_operand, read_register)

    size = memory_operand.size if memory_operand is not None else 8
    mask = _width_mask(size)

    if opcode is Opcode.MOV:
        dest, src = instruction.operands
        value = _read_operand(src, size, read_register, read_memory, address)
        if isinstance(src, MemoryOperand):
            effect.memory_read = (address, size)
            effect.memory_read_value = value
        if isinstance(dest, Register):
            effect.register_writes[dest.name] = value & MASK64
        else:
            effect.memory_write = (address, size, value & mask)

    elif opcode is Opcode.CMOV:
        dest, src = instruction.operands
        value = _read_operand(src, size, read_register, read_memory, address)
        if isinstance(src, MemoryOperand):
            effect.memory_read = (address, size)
            effect.memory_read_value = value
        if condition_holds(instruction.condition, flags):
            effect.register_writes[dest.name] = value & MASK64
        else:
            effect.register_writes[dest.name] = read_register(dest.name)

    elif opcode is Opcode.SETCC:
        dest = instruction.operands[0]
        value = 1 if condition_holds(instruction.condition, flags) else 0
        if isinstance(dest, Register):
            effect.register_writes[dest.name] = value
        else:
            effect.memory_write = (address, size, value)

    elif opcode in (Opcode.CMP, Opcode.TEST):
        first, second = instruction.operands
        a = _read_operand(first, size, read_register, read_memory, address)
        b = _read_operand(second, size, read_register, read_memory, address)
        if isinstance(first, MemoryOperand) or isinstance(second, MemoryOperand):
            effect.memory_read = (address, size)
            effect.memory_read_value = (
                a if isinstance(first, MemoryOperand) else b
            )
        _, new_flags = alu_compute(opcode, a, b, size)
        effect.flag_writes = new_flags

    else:
        # Remaining ALU opcodes, possibly with a memory destination (RMW).
        dest = instruction.operands[0]
        if opcode in (Opcode.INC, Opcode.DEC, Opcode.NEG, Opcode.NOT):
            a = _read_operand(dest, size, read_register, read_memory, address)
            b = 0
        else:
            src = instruction.operands[1]
            a = _read_operand(dest, size, read_register, read_memory, address)
            b = _read_operand(src, size, read_register, read_memory, address)
            if isinstance(src, MemoryOperand):
                effect.memory_read = (address, size)
                effect.memory_read_value = b
        if isinstance(dest, MemoryOperand):
            effect.memory_read = (address, size)
            effect.memory_read_value = a
        result, new_flags = alu_compute(
            opcode, a, b, size, carry_in=flags.get("cf", False)
        )
        if instruction.writes_flags:
            if opcode in _PRESERVES_CARRY and "cf" in new_flags:
                new_flags["cf"] = flags.get("cf", False)
            effect.flag_writes = new_flags
        if isinstance(dest, Register):
            effect.register_writes[dest.name] = result & MASK64
        else:
            effect.memory_write = (address, size, result & mask)

    effect.next_pc = instruction.fallthrough_pc
    return effect


def execute_on_state(instruction: Instruction, state: ArchState) -> ExecutionEffect:
    """Execute ``instruction`` directly against an :class:`ArchState`.

    Returns the effect after applying it (register writes, flag updates and
    memory writes are performed in place).  Used by the functional emulator.
    """
    effect = evaluate(
        instruction,
        state.registers.read,
        state.flags,
        state.read_memory,
    )
    for name, value in effect.register_writes.items():
        state.registers.write(name, value)
    if effect.flag_writes:
        state.flags.update(effect.flag_writes)
    if effect.memory_write is not None:
        address, size, value = effect.memory_write
        state.write_memory(address, size, value)
    return effect
