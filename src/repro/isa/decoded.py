"""Decode-once program representation for the interpreter hot paths.

Both interpreters — the functional emulator (the leakage model) and the
out-of-order core — execute each *static* instruction thousands of times per
campaign, but :class:`~repro.isa.instructions.Instruction` derives all of its
structural metadata (``is_load``, ``source_registers()``, the memory operand,
...) from the operand tuple on every query.  A :class:`DecodedProgram`
front-end decodes every instruction exactly once into a flat
:class:`DecodedInstruction` record of plain attributes, plus a dense
pc-indexed table that replaces the per-step dictionary lookup of
``Program.instruction_at``.

The decode step only *caches* answers computed by :mod:`repro.isa.instructions`
and :mod:`repro.isa.semantics`; it never re-derives semantics of its own, so
``isa/semantics.py`` remains the single source of architectural truth and the
two interpreters cannot diverge through this layer.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.isa.instructions import Instruction, InstructionClass, Opcode
from repro.isa.operands import MemoryOperand
from repro.isa.program import INSTRUCTION_SIZE, Program
from repro.isa.semantics import ReadRegister, compute_effective_address, condition_predicate

#: Flag predicate bound at decode time: ``predicate(zf, sf, cf, of, pf)``.
CondPredicate = Callable[[bool, bool, bool, bool, bool], bool]


def _always_false(zf: bool, sf: bool, cf: bool, of: bool, pf: bool) -> bool:
    return False


class DecodedInstruction:
    """Per-static-instruction metadata, precomputed once.

    Every attribute mirrors the like-named :class:`Instruction` property or
    method; the constructor is the only place they are evaluated.
    """

    __slots__ = (
        "instruction",
        "pc",
        "opcode",
        "condition",
        "cond_predicate",
        "target_pc",
        "fallthrough_pc",
        "instruction_class",
        "is_branch",
        "is_cond_branch",
        "is_jmp",
        "is_exit",
        "is_fence",
        "is_load",
        "is_store",
        "is_memory_access",
        "writes_flags",
        "reads_flags",
        "needs_flags_order",
        "partial_flag_writer",
        "writes_dest_register",
        "source_registers",
        "destination_register",
        "address_registers",
        "needed_registers",
        "memory_operand",
        "mem_base",
        "mem_index",
        "mem_displacement",
        "mem_size",
        "exec_kind",
        "effect_fn",
    )

    #: ``exec_kind`` values: integer dispatch for the O3 execute stage,
    #: ordered so the most frequent kinds are tested first.
    KIND_SIMPLE = 0  # NOP / LFENCE / EXIT
    KIND_BRANCH = 1  # JMP / JCC
    KIND_MEMORY = 2  # any load/store
    KIND_ALU = 3  # everything else (register ALU, SETCC, CMOV, CMP/TEST)

    def __init__(self, instruction: Instruction) -> None:
        self.instruction = instruction
        self.pc: int = instruction.pc
        self.opcode: Opcode = instruction.opcode
        self.condition: Optional[str] = instruction.condition
        self.cond_predicate: CondPredicate = (
            condition_predicate(instruction.condition)
            if instruction.condition is not None
            else _always_false
        )
        self.target_pc: Optional[int] = instruction.target_pc
        self.fallthrough_pc: Optional[int] = instruction.fallthrough_pc
        self.instruction_class: InstructionClass = instruction.instruction_class
        self.is_branch: bool = instruction.is_branch
        self.is_cond_branch: bool = instruction.is_cond_branch
        self.is_jmp: bool = instruction.opcode is Opcode.JMP
        self.is_exit: bool = instruction.is_exit
        self.is_fence: bool = instruction.opcode is Opcode.LFENCE
        self.is_load: bool = instruction.is_load
        self.is_store: bool = instruction.is_store
        self.is_memory_access: bool = instruction.is_memory_access
        self.writes_flags: bool = instruction.writes_flags
        self.reads_flags: bool = instruction.reads_flags
        # Instructions that must wait on the previous flag producer in the
        # O3 core: explicit flag readers plus partial flag updaters (INC/DEC
        # preserve the carry; shifts leave flags untouched for a zero count).
        self.needs_flags_order: bool = instruction.reads_flags or instruction.opcode in (
            Opcode.INC,
            Opcode.DEC,
            Opcode.SHL,
            Opcode.SHR,
        )
        # Partial flag updaters carry old flag state through: INC/DEC preserve
        # the carry and zero-count shifts leave every flag untouched, so their
        # resulting flags (and flag taint) still depend on the previous flags.
        self.partial_flag_writer: bool = instruction.writes_flags and instruction.opcode in (
            Opcode.INC,
            Opcode.DEC,
            Opcode.SHL,
            Opcode.SHR,
        )
        self.writes_dest_register: bool = instruction.writes_dest_register
        self.source_registers: Tuple[str, ...] = instruction.source_registers()
        self.destination_register: Optional[str] = instruction.destination_register()
        self.address_registers: Tuple[str, ...] = instruction.address_registers()
        self.needed_registers: Tuple[str, ...] = tuple(
            dict.fromkeys(self.source_registers + self.address_registers)
        )
        memory_operand: Optional[MemoryOperand] = instruction.memory_operand
        self.memory_operand = memory_operand
        if memory_operand is not None:
            self.mem_base: Optional[str] = memory_operand.base
            self.mem_index: Optional[str] = memory_operand.index
            self.mem_displacement: int = memory_operand.displacement
            self.mem_size: int = memory_operand.size
        else:
            self.mem_base = None
            self.mem_index = None
            self.mem_displacement = 0
            self.mem_size = 0
        if self.is_branch:
            self.exec_kind: int = DecodedInstruction.KIND_BRANCH
        elif self.is_memory_access:
            self.exec_kind = DecodedInstruction.KIND_MEMORY
        elif self.opcode in (Opcode.NOP, Opcode.LFENCE, Opcode.EXIT):
            self.exec_kind = DecodedInstruction.KIND_SIMPLE
        else:
            self.exec_kind = DecodedInstruction.KIND_ALU
        #: Specialized ``evaluate`` closure, attached lazily by
        #: :func:`repro.isa.specialized.attach_effect_closures`; None until
        #: (and unless) specialization is enabled for this program.
        self.effect_fn: Optional[Callable] = None

    def effective_address(self, read_register: ReadRegister) -> int:
        """Resolve this instruction's memory address.

        Thin wrapper over :func:`~repro.isa.semantics.compute_effective_address`
        with the operand lookup already done — the addressing arithmetic
        itself stays in semantics, shared by both interpreters.
        """
        return compute_effective_address(self.memory_operand, read_register)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecodedInstruction({self.instruction!s} @ {self.pc:#x})"


class DecodedProgram:
    """A program decoded into :class:`DecodedInstruction` records.

    ``at_pc`` resolves a program counter in O(1) through a dense table
    indexed by ``(pc - code_base) // INSTRUCTION_SIZE`` — the layout is
    contiguous by construction (see ``Program._assign_addresses``).

    Deliberately holds no reference to the ``Program`` itself: the decode
    cache keys weakly on the program, and a value referencing its key would
    pin every decoded program for the process lifetime.
    """

    __slots__ = ("entries", "code_base", "entry_pc", "end_pc", "_table", "__weakref__")

    def __init__(self, program: Program) -> None:
        self.code_base: int = program.code_base
        self.entry_pc: int = program.entry_pc
        self.end_pc: int = program.end_pc
        self.entries: Tuple[DecodedInstruction, ...] = tuple(
            DecodedInstruction(instruction)
            for instruction in program.linear_instructions()
        )
        table: List[Optional[DecodedInstruction]] = [None] * (
            (self.end_pc - self.code_base) // INSTRUCTION_SIZE
        )
        for entry in self.entries:
            table[(entry.pc - self.code_base) // INSTRUCTION_SIZE] = entry
        self._table = table

    def at_pc(self, pc: int) -> Optional[DecodedInstruction]:
        """The decoded instruction at ``pc``, or None outside the program."""
        offset = pc - self.code_base
        index, misaligned = divmod(offset, INSTRUCTION_SIZE)
        if misaligned or offset < 0 or index >= len(self._table):
            return None
        return self._table[index]

    def __len__(self) -> int:
        return len(self.entries)


#: One DecodedProgram per Program instance; weak keys so decoded metadata
#: dies with the program instead of pinning every generated test forever.
_DECODED_CACHE: "WeakKeyDictionary[Program, DecodedProgram]" = WeakKeyDictionary()


def decode_program(program: Program) -> DecodedProgram:
    """Return the (cached) decoded form of ``program``."""
    decoded = _DECODED_CACHE.get(program)
    if decoded is None:
        decoded = DecodedProgram(program)
        _DECODED_CACHE[program] = decoded
    return decoded
