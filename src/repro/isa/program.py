"""Program representation: basic blocks, address assignment and lookup."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.isa.instructions import Instruction, Opcode, exit_instruction
from repro.isa.operands import Label

#: Every instruction occupies a fixed number of bytes in the code image.
#: This keeps instruction-cache behaviour simple and deterministic.
INSTRUCTION_SIZE = 4

#: Default base address of the code image.
DEFAULT_CODE_BASE = 0x400000


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator.

    ``instructions`` holds the body; ``terminator`` is either a conditional
    branch (``JCC``), an unconditional jump (``JMP``), ``EXIT``, or ``None``
    (fall through to the next block in program order).
    """

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    terminator: Optional[Instruction] = None

    def all_instructions(self) -> List[Instruction]:
        if self.terminator is None:
            return list(self.instructions)
        return list(self.instructions) + [self.terminator]

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)


class Program:
    """An ordered collection of basic blocks forming a test program.

    The program is laid out linearly in the order the blocks appear, each
    instruction occupying :data:`INSTRUCTION_SIZE` bytes.  After construction
    every instruction carries its ``pc`` and, for branches, the resolved
    ``target_pc`` and ``fallthrough_pc``, which is what both the functional
    emulator and the out-of-order simulator navigate by.
    """

    def __init__(
        self,
        blocks: Iterable[BasicBlock],
        code_base: int = DEFAULT_CODE_BASE,
        name: str = "test",
    ) -> None:
        self.name = name
        self.code_base = code_base
        self.blocks: List[BasicBlock] = list(blocks)
        if not self.blocks:
            raise ValueError("a program needs at least one basic block")
        self._ensure_exit()
        self._by_pc: Dict[int, Instruction] = {}
        self._block_start: Dict[str, int] = {}
        self._content_id: Optional[str] = None
        self._assign_addresses()

    # -- construction helpers -------------------------------------------------
    def _ensure_exit(self) -> None:
        last = self.blocks[-1]
        if last.terminator is None or last.terminator.opcode is not Opcode.EXIT:
            if last.terminator is None:
                last.terminator = exit_instruction()
            else:
                self.blocks.append(BasicBlock("exit", [], exit_instruction()))

    def _assign_addresses(self) -> None:
        pc = self.code_base
        for block in self.blocks:
            self._block_start[block.name] = pc
            for instruction in block.all_instructions():
                instruction.pc = pc
                self._by_pc[pc] = instruction
                pc += INSTRUCTION_SIZE
        self._end_pc = pc
        # Resolve branch targets now that block addresses are known.
        for block in self.blocks:
            for instruction in block.all_instructions():
                if instruction.is_branch:
                    label = instruction.operands[0]
                    if not isinstance(label, Label):
                        raise TypeError("branch operand must be a Label")
                    if label.name not in self._block_start:
                        raise ValueError(f"undefined branch target: {label.name}")
                    instruction.target_pc = self._block_start[label.name]
                if not instruction.is_exit:
                    instruction.fallthrough_pc = instruction.pc + INSTRUCTION_SIZE

    # -- queries ---------------------------------------------------------------
    @property
    def entry_pc(self) -> int:
        return self.code_base

    @property
    def end_pc(self) -> int:
        """First byte address after the last instruction."""
        return self._end_pc

    def instruction_at(self, pc: int) -> Optional[Instruction]:
        return self._by_pc.get(pc)

    def block_address(self, name: str) -> int:
        return self._block_start[name]

    def linear_instructions(self) -> List[Instruction]:
        """All instructions in layout order."""
        result: List[Instruction] = []
        for block in self.blocks:
            result.extend(block.all_instructions())
        return result

    def __len__(self) -> int:
        return len(self._by_pc)

    def memory_instruction_count(self) -> int:
        return sum(1 for inst in self.linear_instructions() if inst.is_memory_access)

    def conditional_branch_count(self) -> int:
        return sum(1 for inst in self.linear_instructions() if inst.is_cond_branch)

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON form of the program (the corpus on-disk format).

        Addresses (``pc``/``target_pc``) are not serialised: they are
        reassigned by the constructor, so structurally equal programs always
        produce byte-identical payloads regardless of how they were built.
        """
        return {
            "name": self.name,
            "code_base": self.code_base,
            "blocks": [
                {
                    "name": block.name,
                    "instructions": [
                        instruction.to_dict() for instruction in block.instructions
                    ],
                    "terminator": (
                        block.terminator.to_dict()
                        if block.terminator is not None
                        else None
                    ),
                }
                for block in self.blocks
            ],
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "Program":
        """Rebuild a program serialised by :meth:`to_dict` (addresses reassigned)."""
        blocks = [
            BasicBlock(
                block["name"],
                [
                    Instruction.from_dict(instruction)
                    for instruction in block["instructions"]
                ],
                (
                    Instruction.from_dict(block["terminator"])
                    if block["terminator"] is not None
                    else None
                ),
            )
            for block in payload["blocks"]
        ]
        return Program(
            blocks, code_base=payload["code_base"], name=payload["name"]
        )

    def content_id(self) -> str:
        """Stable digest of the program's structure (name excluded).

        Two programs with identical blocks hash identically no matter how
        they were built or what they are called — the corpus on-disk ids
        (:func:`repro.feedback.corpus.program_id`) and the specialization
        cache (:mod:`repro.isa.specialized`) both key on this, so a corpus
        entry replayed under a fresh name still hits the compiled artifact.
        Cached per instance; programs are immutable after construction.
        """
        if self._content_id is None:
            payload = {
                key: value for key, value in self.to_dict().items() if key != "name"
            }
            canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            self._content_id = hashlib.blake2b(
                canonical.encode("utf-8"), digest_size=8
            ).hexdigest()
        return self._content_id

    # -- formatting -------------------------------------------------------------
    def to_asm(self) -> str:
        """Render the program in an assembly-like textual form."""
        lines: List[str] = []
        for block in self.blocks:
            lines.append(f".{block.name}:")
            for instruction in block.all_instructions():
                lines.append(f"    {instruction}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_asm()
