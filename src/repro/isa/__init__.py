"""A compact x86-inspired ISA used by the AMuLeT reproduction.

The original AMuLeT drives real x86-64 test programs through the Unicorn
emulator (leakage model) and gem5 (executor).  Neither is available here, so
this package defines a small but expressive ISA that both the functional
emulator (:mod:`repro.model`) and the out-of-order simulator
(:mod:`repro.uarch`) execute from the *same* semantic definitions
(:mod:`repro.isa.semantics`).  Sharing the semantics module guarantees that
the architectural behaviour of the two sides can never diverge, which is a
precondition for relational testing: any trace difference must come from the
micro-architecture, never from an emulator/simulator semantics mismatch.

The ISA covers everything the paper's example programs (Figures 4, 6, 8, 9)
use: ALU operations, conditional moves, conditional branches, and loads and
stores addressed relative to a sandbox base register (``r14``), with access
sizes of 1-8 bytes so that cache-line-crossing ("split") accesses exist.
"""

from repro.isa.registers import (
    FLAG_NAMES,
    GPR_NAMES,
    INPUT_REGISTERS,
    MASK64,
    SANDBOX_BASE_REGISTER,
    SCRATCH_REGISTERS,
    ArchState,
    RegisterFile,
)
from repro.isa.operands import Immediate, Label, MemoryOperand, Register
from repro.isa.instructions import (
    CONDITION_CODES,
    Instruction,
    InstructionClass,
    Opcode,
    cmov,
    cond_branch,
    exit_instruction,
    jump,
    load,
    nop,
    store,
)
from repro.isa.program import BasicBlock, Program
from repro.isa.decoded import DecodedInstruction, DecodedProgram, decode_program
from repro.isa.semantics import (
    ExecutionEffect,
    alu_compute,
    compute_effective_address,
    condition_holds,
    condition_predicate,
    execute_on_state,
)

__all__ = [
    "FLAG_NAMES",
    "GPR_NAMES",
    "INPUT_REGISTERS",
    "MASK64",
    "SANDBOX_BASE_REGISTER",
    "SCRATCH_REGISTERS",
    "ArchState",
    "RegisterFile",
    "Immediate",
    "Label",
    "MemoryOperand",
    "Register",
    "CONDITION_CODES",
    "Instruction",
    "InstructionClass",
    "Opcode",
    "cmov",
    "cond_branch",
    "exit_instruction",
    "jump",
    "load",
    "nop",
    "store",
    "BasicBlock",
    "Program",
    "DecodedInstruction",
    "DecodedProgram",
    "decode_program",
    "ExecutionEffect",
    "alu_compute",
    "compute_effective_address",
    "condition_holds",
    "condition_predicate",
    "execute_on_state",
]
